"""SQ8-Flat: scalar-quantized brute force, the memory-saving index option.

A second "quantization-based index" (paper Sec. 4.4) behind the same
interface: vectors are stored as uint8 codes with per-dimension min/max
scaling (4x smaller than float32).  Exact ordering is approximated by
quantization, so recall is slightly below the FLAT index while memory
drops 4x — the trade-off the ablation bench shows.

Distance math routes through :class:`~repro.index.pq.PQKernel` over the
affine degenerate codebook (``dim`` subspaces of width one, centroids
``lo[j] + scale[j]·c``): SQ8 and PQ share one quantized-kernel interface,
and scans run ADC over the codes instead of decoding a float scratch
matrix first.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from ..errors import VectorSearchError
from ..types import Metric, normalize
from .interface import IndexStats, SearchResult, VectorIndex
from .pq import PQCodebook, PQKernel

__all__ = ["SQ8FlatIndex"]


class SQ8FlatIndex(VectorIndex):
    """Brute force over 8-bit scalar-quantized codes."""

    def __init__(self, dim: int, metric: Metric = Metric.L2):
        if dim <= 0:
            raise VectorSearchError("dim must be positive")
        self.dim = dim
        self.metric = metric
        self._codes = np.zeros((0, dim), dtype=np.uint8)
        self._ids = np.zeros(0, dtype=np.int64)
        self._id_to_row: dict[int, int] = {}
        self._lo: np.ndarray | None = None  # per-dimension range, fixed at
        self._scale: np.ndarray | None = None  # first train
        self._codebook: PQCodebook | None = None
        self._stats = IndexStats()
        #: ADC kernel over the codes, rebuilt lazily after any mutation
        #: (construction is free — PQ kernels hold no per-row float cache).
        self._scan_kernel: PQKernel | None = None

    # ----------------------------------------------------------- quantizer
    def _train(self, vectors: np.ndarray) -> None:
        lo = vectors.min(axis=0)
        hi = vectors.max(axis=0)
        span = np.maximum(hi - lo, 1e-6)
        self._lo = lo.astype(np.float32)
        self._scale = (span / 255.0).astype(np.float32)
        self._codebook = PQCodebook.affine(self._lo, self._scale)

    def _encode(self, vectors: np.ndarray) -> np.ndarray:
        return self._codebook.encode(vectors)

    def _decode(self, codes: np.ndarray) -> np.ndarray:
        return self._codebook.decode(codes)

    @property
    def memory_bytes(self) -> int:
        return int(self._codes.nbytes)

    # ------------------------------------------------------------- updates
    def update_items(self, ids: Sequence[int], vectors: np.ndarray, num_threads: int = 1) -> None:
        vectors = np.asarray(vectors, dtype=np.float32)
        if vectors.ndim == 1:
            vectors = vectors.reshape(1, -1)
        if vectors.shape[1] != self.dim:
            raise VectorSearchError(f"expected dimension {self.dim}, got {vectors.shape[1]}")
        if len(ids) != vectors.shape[0]:
            raise VectorSearchError("ids and vectors length mismatch")
        if self.metric is Metric.COSINE:
            # The ADC kernel's COSINE contract: rows are prenormalized
            # before encoding (cosine is scale-invariant, so this loses
            # nothing and the codes directly encode unit rows).
            vectors = normalize(vectors)
        if self._lo is None:
            self._train(vectors)
        codes = self._encode(vectors)
        for ext_id, code in zip(ids, codes):
            ext_id = int(ext_id)
            row = self._id_to_row.get(ext_id)
            if row is None:
                self._codes = np.vstack([self._codes, code[None, :]])
                self._ids = np.append(self._ids, np.int64(ext_id))
                self._id_to_row[ext_id] = len(self._ids) - 1
                self._stats.num_inserts += 1
            else:
                self._codes[row] = code
                self._stats.num_updates += 1
        self._scan_kernel = None
        self._stats.num_vectors = len(self._id_to_row)

    def delete_items(self, ids: Sequence[int]) -> None:
        for ext_id in ids:
            ext_id = int(ext_id)
            row = self._id_to_row.pop(ext_id, None)
            if row is None:
                continue
            last = len(self._ids) - 1
            if row != last:
                moved = int(self._ids[last])
                self._ids[row] = moved
                self._codes[row] = self._codes[last]
                self._id_to_row[moved] = row
            self._ids = self._ids[:last]
            self._codes = self._codes[:last]
            self._stats.num_deleted += 1
        self._scan_kernel = None
        self._stats.num_vectors = len(self._id_to_row)

    # --------------------------------------------------------------- reads
    def get_embedding(self, external_id: int) -> np.ndarray:
        """Returns the *decoded* (quantized) vector, as a real SQ index would."""
        row = self._id_to_row.get(int(external_id))
        if row is None:
            raise VectorSearchError(f"id {external_id} not in index")
        return self._decode(self._codes[row][None, :])[0]

    def __contains__(self, external_id: int) -> bool:
        return int(external_id) in self._id_to_row

    def __len__(self) -> int:
        return len(self._id_to_row)

    # -------------------------------------------------------------- search
    def topk_search(
        self,
        query: np.ndarray,
        k: int,
        ef: int | None = None,
        filter_fn: Callable[[int], bool] | None = None,
    ) -> SearchResult:
        if k <= 0:
            raise VectorSearchError("k must be positive")
        self._stats.num_searches += 1
        n = len(self._ids)
        if n == 0:
            return SearchResult.empty()
        query = np.asarray(query, dtype=np.float32).reshape(-1)
        kernel = self._scan_kernel
        if kernel is None:
            kernel = PQKernel(self._codebook, self._codes, self.metric)
            self._scan_kernel = kernel
        self._stats.num_distance_computations += n
        dists = kernel.distances_prefix(kernel.query(query), n)
        ids = self._ids
        if filter_fn is not None:
            keep = np.fromiter((filter_fn(int(i)) for i in ids), dtype=bool, count=n)
            ids, dists = ids[keep], dists[keep]
        if ids.size == 0:
            return SearchResult.empty()
        k = min(k, ids.size)
        part = np.argpartition(dists, k - 1)[:k]
        order = part[np.argsort(dists[part], kind="stable")]
        return SearchResult(ids[order], dists[order])

    def range_search(
        self,
        query: np.ndarray,
        threshold: float,
        ef: int | None = None,
        filter_fn: Callable[[int], bool] | None = None,
    ) -> SearchResult:
        result = self.topk_search(
            query, max(len(self), 1), filter_fn=filter_fn
        )
        within = result.distances < threshold
        return SearchResult(result.ids[within], result.distances[within])

    @property
    def stats(self) -> IndexStats:
        return self._stats
