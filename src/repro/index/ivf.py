"""IVF-Flat: an inverted-file index behind the same four generic functions.

The paper notes that because TigerVector integrates indexes behind
GetEmbedding / TopKSearch / RangeSearch / UpdateItems, *"other vector
indexes (such as quantization-based indexes) can be easily integrated"*
(Sec. 4.4).  This module makes that claim concrete: a k-means coarse
quantizer partitions vectors into ``nlist`` inverted lists; queries scan the
``nprobe`` nearest lists with exact distances.

IVF trades recall for speed differently than HNSW (probe count instead of
beam width), which the ablation bench compares.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from ..errors import VectorSearchError
from ..types import Metric
from .interface import IndexStats, SearchResult, VectorIndex
from .kernels import DistanceKernel

__all__ = ["IVFFlatIndex", "kmeans"]


def kmeans(
    vectors: np.ndarray,
    k: int,
    iterations: int = 10,
    seed: int = 17,
) -> np.ndarray:
    """Plain Lloyd's k-means (numpy); returns (k, dim) centroids.

    Empty clusters are re-seeded from random points, which is what keeps the
    coarse quantizer balanced on clustered data.
    """
    rng = np.random.default_rng(seed)
    n = vectors.shape[0]
    if n == 0:
        raise VectorSearchError("cannot run k-means on an empty set")
    k = min(k, n)
    centroids = vectors[rng.choice(n, size=k, replace=False)].astype(np.float32)
    for _ in range(iterations):
        # assign: one fully vectorized point-vs-centroid matrix through the
        # shared kernel (L2 regardless of index metric — Lloyd's update
        # minimizes squared Euclidean distortion).
        kernel = DistanceKernel.for_matrix(centroids, Metric.L2)
        assign = np.argmin(kernel.cross(vectors), axis=1)
        # update
        for c in range(k):
            members = vectors[assign == c]
            if len(members):
                centroids[c] = members.mean(axis=0)
            else:
                centroids[c] = vectors[rng.integers(0, n)]
    return centroids


class IVFFlatIndex(VectorIndex):
    """Inverted-file index with exact (flat) in-list distances."""

    def __init__(
        self,
        dim: int,
        metric: Metric = Metric.L2,
        nlist: int = 64,
        nprobe: int = 8,
        train_iterations: int = 10,
        seed: int = 17,
    ):
        if dim <= 0:
            raise VectorSearchError("dim must be positive")
        if nlist <= 0 or nprobe <= 0:
            raise VectorSearchError("nlist and nprobe must be positive")
        self.dim = dim
        self.metric = metric
        self.nlist = nlist
        self.nprobe = nprobe
        self.train_iterations = train_iterations
        self.seed = seed
        self._centroids: np.ndarray | None = None
        self._lists: list[list[int]] = []  # centroid -> row indexes
        self._vectors = np.zeros((0, dim), dtype=np.float32)
        self._ids = np.zeros(0, dtype=np.int64)
        self._id_to_row: dict[int, int] = {}
        self._deleted: set[int] = set()  # row indexes
        self._stats = IndexStats()
        self._kernel = DistanceKernel(metric, self._vectors, precompute=False)
        self._centroid_kernel: DistanceKernel | None = None  # L2 over centroids

    # ------------------------------------------------------------- training
    @property
    def is_trained(self) -> bool:
        return self._centroids is not None

    def _train(self, vectors: np.ndarray) -> None:
        nlist = min(self.nlist, max(1, len(vectors)))
        self._centroids = kmeans(
            vectors, nlist, iterations=self.train_iterations, seed=self.seed
        )
        self._lists = [[] for _ in range(len(self._centroids))]
        # Coarse quantization is always L2 (nearest centroid), whatever the
        # in-list metric.
        self._centroid_kernel = DistanceKernel.for_matrix(self._centroids, Metric.L2)

    def _assign(self, vectors: np.ndarray) -> np.ndarray:
        return np.argmin(self._centroid_kernel.cross(vectors), axis=1)

    # ------------------------------------------------------------- updates
    def update_items(self, ids: Sequence[int], vectors: np.ndarray, num_threads: int = 1) -> None:
        vectors = np.asarray(vectors, dtype=np.float32)
        if vectors.ndim == 1:
            vectors = vectors.reshape(1, -1)
        if vectors.shape[1] != self.dim:
            raise VectorSearchError(f"expected dimension {self.dim}, got {vectors.shape[1]}")
        if len(ids) != vectors.shape[0]:
            raise VectorSearchError("ids and vectors length mismatch")
        if not self.is_trained:
            self._train(vectors)
        start_row = len(self._ids)
        self._vectors = np.vstack([self._vectors, vectors])
        self._ids = np.concatenate([self._ids, np.asarray(ids, dtype=np.int64)])
        self._kernel.attach(self._vectors, copy_rows=start_row)
        if vectors.shape[0]:
            self._kernel.set_rows(slice(start_row, start_row + vectors.shape[0]), vectors)
        assignments = self._assign(vectors)
        for offset, (ext_id, centroid) in enumerate(zip(ids, assignments)):
            ext_id = int(ext_id)
            row = start_row + offset
            old = self._id_to_row.get(ext_id)
            if old is not None:
                self._deleted.add(old)
                self._stats.num_updates += 1
            else:
                self._stats.num_inserts += 1
            self._id_to_row[ext_id] = row
            self._lists[int(centroid)].append(row)
        self._stats.num_vectors = len(self._id_to_row)

    def delete_items(self, ids: Sequence[int]) -> None:
        for ext_id in ids:
            row = self._id_to_row.pop(int(ext_id), None)
            if row is not None:
                self._deleted.add(row)
                self._stats.num_deleted += 1
        self._stats.num_vectors = len(self._id_to_row)

    # --------------------------------------------------------------- reads
    def get_embedding(self, external_id: int) -> np.ndarray:
        row = self._id_to_row.get(int(external_id))
        if row is None:
            raise VectorSearchError(f"id {external_id} not in index")
        return self._vectors[row].copy()

    def __contains__(self, external_id: int) -> bool:
        return int(external_id) in self._id_to_row

    def __len__(self) -> int:
        return len(self._id_to_row)

    # -------------------------------------------------------------- search
    def _probe_rows(self, query: np.ndarray, nprobe: int) -> np.ndarray:
        self._stats.num_distance_computations += len(self._centroids)
        ck = self._centroid_kernel
        c_dists = ck.distances_prefix(ck.query(query), len(self._centroids))
        nprobe = min(nprobe, len(self._centroids))
        order = np.argpartition(c_dists, nprobe - 1)[:nprobe]
        rows = [r for c in order for r in self._lists[int(c)] if r not in self._deleted]
        return np.asarray(rows, dtype=np.int64)

    def topk_search(
        self,
        query: np.ndarray,
        k: int,
        ef: int | None = None,
        filter_fn: Callable[[int], bool] | None = None,
    ) -> SearchResult:
        """Top-k over the probed lists; ``ef`` maps to nprobe here.

        The ef parameter slot carries the accuracy knob for whichever index
        is plugged in — for IVF that is the probe count.
        """
        if k <= 0:
            raise VectorSearchError("k must be positive")
        query = np.asarray(query, dtype=np.float32).reshape(-1)
        if query.shape[0] != self.dim:
            raise VectorSearchError(f"expected dimension {self.dim}, got {query.shape[0]}")
        self._stats.num_searches += 1
        if not self.is_trained or not len(self._ids):
            return SearchResult.empty()
        rows = self._probe_rows(query, ef or self.nprobe)
        if rows.size == 0:
            return SearchResult.empty()
        self._stats.num_distance_computations += rows.size
        dists = self._kernel.distances(self._kernel.query(query), rows)
        ids = self._ids[rows]
        if filter_fn is not None:
            keep = np.fromiter((filter_fn(int(i)) for i in ids), dtype=bool, count=len(ids))
            ids, dists = ids[keep], dists[keep]
        if ids.size == 0:
            return SearchResult.empty()
        # One external id may appear twice (stale row after update); keep best.
        order = np.argsort(dists, kind="stable")
        seen: set[int] = set()
        out_ids, out_dists = [], []
        for i in order:
            ext = int(ids[i])
            if ext in seen:
                continue
            # stale rows: only the current mapping counts
            if self._id_to_row.get(ext) is None:
                continue
            seen.add(ext)
            out_ids.append(ext)
            out_dists.append(float(dists[i]))
            if len(out_ids) >= k:
                break
        return SearchResult(np.asarray(out_ids), np.asarray(out_dists, dtype=np.float32))

    def range_search(
        self,
        query: np.ndarray,
        threshold: float,
        ef: int | None = None,
        filter_fn: Callable[[int], bool] | None = None,
    ) -> SearchResult:
        from .range_search import range_search_via_topk

        return range_search_via_topk(self, query, threshold, ef=ef, filter_fn=filter_fn)

    @property
    def stats(self) -> IndexStats:
        return self._stats
