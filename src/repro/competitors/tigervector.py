"""TigerVector as a benchmark subject.

A thin wrapper giving TigerVector the same benchmarking surface as the
competitor simulators.  It uses the same measured-compute + profile-model
methodology so cross-system comparisons are apples-to-apples; correctness
benchmarks elsewhere exercise the full engine (MVCC, bitmaps, GSQL).
"""

from __future__ import annotations

from .base import PROFILES, VectorSystemSim

__all__ = ["TigerVectorSystem"]


class TigerVectorSystem(VectorSystemSim):
    """Segmented, ef-tunable, pre-filtering, distributed (the full feature set)."""

    def __init__(self, segment_size: int = 20_000, M: int = 16, ef_construction: int = 128):
        super().__init__(
            PROFILES["TigerVector"],
            segment_size=segment_size,
            M=M,
            ef_construction=ef_construction,
        )
