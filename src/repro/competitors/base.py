"""Shared machinery for the competitor simulators.

Every system runs the *same* HNSW kernels (search compute is measured, not
modeled); a :class:`SystemProfile` declares the engine-level constants that
differentiate systems.  Constants are calibrated against the paper's
measured ratios and kept in one place (:data:`PROFILES`) so the calibration
is auditable:

- ``per_query_overhead_s``: request-path overhead outside index compute
  (HTTP parsing, JVM dispatch, gRPC, plan setup).  Neo4j's HTTP+JVM stack is
  the paper's explanation for its 15x latency gap at similar compute.
- ``client_efficiency``: how much of 16 closed-loop client threads' ideal
  throughput the engine sustains (TigerGraph's MPP engine ~0.85; Milvus
  ~0.55 — Go scheduler, per the paper's multi-core-parallelism explanation;
  Neo4j ~0.45; Neptune ~0.60).
- ``intra_query_parallelism``: effective cores one query's segment fan-out
  uses (1.0 for the single-index systems).
- ``load_factor`` / ``build_factor``: multipliers on measured base
  load/build time (Table 2: Milvus data load is 9.6-22.5x TigerVector's;
  Neo4j index build is 5.4-7.4x).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..cluster.costs import HardwareCost, NEPTUNE_1024_MNCU, TIGERVECTOR_N2D
from ..datasets.vectors import VectorDataset
from ..errors import VectorSearchError
from ..index.hnsw import HNSWIndex
from ..types import Metric

__all__ = ["PROFILES", "SearchMeasurement", "SystemProfile", "VectorSystemSim"]


@dataclass(frozen=True)
class SystemProfile:
    name: str
    per_query_overhead_s: float
    client_efficiency: float
    intra_query_parallelism: float
    load_factor: float
    build_factor: float
    supports_ef_tuning: bool
    fixed_ef: int | None
    segmented: bool
    prefilter: bool
    diversity_heuristic: bool  # Lucene's HNSW lacks it -> capped recall
    atomic_updates: bool
    distributed: bool
    hardware: HardwareCost


PROFILES: dict[str, SystemProfile] = {
    "TigerVector": SystemProfile(
        name="TigerVector",
        per_query_overhead_s=0.00035,
        client_efficiency=0.85,
        intra_query_parallelism=4.0,
        load_factor=1.0,
        build_factor=1.0,
        supports_ef_tuning=True,
        fixed_ef=None,
        segmented=True,
        prefilter=True,
        diversity_heuristic=True,
        atomic_updates=True,
        distributed=True,
        hardware=TIGERVECTOR_N2D,
    ),
    "Milvus": SystemProfile(
        name="Milvus",
        per_query_overhead_s=0.00040,
        client_efficiency=0.70,
        intra_query_parallelism=3.4,
        load_factor=1.5,  # residual overhead; the row-by-row parse path
        # itself reproduces Table 2's 9.6-22.5x data-load gap
        build_factor=1.07,
        supports_ef_tuning=True,
        fixed_ef=None,
        segmented=True,
        prefilter=True,
        diversity_heuristic=True,
        atomic_updates=True,
        distributed=True,
        hardware=TIGERVECTOR_N2D,
    ),
    "Neo4j": SystemProfile(
        name="Neo4j",
        per_query_overhead_s=0.0024,  # HTTP + JVM dispatch
        client_efficiency=0.55,
        intra_query_parallelism=1.0,
        load_factor=1.0,
        build_factor=5.4,  # Table 2: Lucene single-threaded merge pipeline
        supports_ef_tuning=False,
        fixed_ef=14,  # Lucene's candidate pool is tied to k; no tuning knob
        segmented=False,
        prefilter=False,  # post-filter only
        diversity_heuristic=False,  # Lucene-style graph -> 60-70% recall cap
        atomic_updates=True,
        distributed=False,
        hardware=TIGERVECTOR_N2D,
    ),
    "Neptune": SystemProfile(
        name="Neptune",
        per_query_overhead_s=0.0011,
        client_efficiency=0.66,
        intra_query_parallelism=2.2,
        load_factor=1.2,
        build_factor=1.3,
        supports_ef_tuning=False,
        fixed_ef=128,  # one high-recall operating point (paper: 99.9%)
        segmented=False,
        prefilter=False,
        diversity_heuristic=True,
        atomic_updates=False,  # the docs state vector updates are not atomic
        distributed=False,  # single vector index for the whole graph
        hardware=NEPTUNE_1024_MNCU,
    ),
}


@dataclass
class SearchMeasurement:
    """One query's outcome: result ids + measured compute + modeled timings."""

    ids: np.ndarray
    distances: np.ndarray
    compute_seconds: float
    latency_seconds: float  # modeled single-client latency
    service_seconds: float  # modeled server-side service time


class VectorSystemSim:
    """A competitor built from shared HNSW kernels + a SystemProfile."""

    def __init__(
        self,
        profile: SystemProfile,
        segment_size: int = 20_000,
        M: int = 16,
        ef_construction: int = 128,
    ):
        self.profile = profile
        self.segment_size = segment_size if profile.segmented else None
        self.M = M
        self.ef_construction = ef_construction
        self.indexes: list[HNSWIndex] = []
        self.metric = Metric.L2
        self.dim = 0
        self.num_vectors = 0
        self.load_seconds = 0.0
        self.build_seconds = 0.0

    # ------------------------------------------------------------- loading
    def _parse_vectors_fast(self, text: str, dim: int) -> np.ndarray:
        """The optimized loading-tool path: one vectorized parse call."""
        flat = np.fromstring(text.replace("\n", ","), sep=",", dtype=np.float32)
        return flat.reshape(-1, dim)

    def _parse_vectors_slow(self, text: str, dim: int) -> np.ndarray:
        """The raw-vector-file path (Milvus): per-row Python parsing."""
        rows = [
            [float(x) for x in line.split(",")]
            for line in text.splitlines()
            if line
        ]
        return np.asarray(rows, dtype=np.float32)

    def load_and_build(self, dataset: VectorDataset) -> dict[str, float]:
        """Ingest + index the dataset; returns Table-2-style timings.

        Data loading is measured on a *real* parse of a CSV serialization of
        the dataset: TigerVector and Neo4j use the vectorized parse path
        (TigerGraph's optimized loading tool; Neo4j's CSV importer — the
        paper measures them comparable), while Milvus parses row by row,
        reproducing Table 2's 9.6-22.5x data-load gap mechanically.  The
        profile's ``load_factor`` covers residual engine overheads.
        """
        vectors = dataset.vectors
        self.metric = dataset.metric
        self.dim = int(vectors.shape[1])
        self.num_vectors = int(vectors.shape[0])
        csv_text = "\n".join(",".join(f"{x:.6f}" for x in row) for row in vectors)
        start = time.perf_counter()
        if self.profile.name == "Milvus":
            parsed = self._parse_vectors_slow(csv_text, self.dim)
        else:
            parsed = self._parse_vectors_fast(csv_text, self.dim)
        if self.segment_size is None:
            chunks = [(0, parsed)]
        else:
            chunks = [
                (lo, parsed[lo: lo + self.segment_size])
                for lo in range(0, len(parsed), self.segment_size)
            ]
        staged = [(lo, np.array(chunk, dtype=np.float32)) for lo, chunk in chunks]
        measured_load = time.perf_counter() - start
        self.load_seconds = measured_load * self.profile.load_factor

        start = time.perf_counter()
        self.indexes = []
        for lo, chunk in staged:
            index = HNSWIndex(
                self.dim,
                self.metric,
                M=self.M,
                ef_construction=self.ef_construction,
                prune_heuristic=self.profile.diversity_heuristic,
            )
            index.update_items(range(lo, lo + len(chunk)), chunk)
            self.indexes.append(index)
        measured_build = time.perf_counter() - start
        self.build_seconds = measured_build * self.profile.build_factor
        return {
            "data_load_seconds": self.load_seconds,
            "index_build_seconds": self.build_seconds,
            "end_to_end_seconds": self.load_seconds + self.build_seconds,
        }

    # -------------------------------------------------------------- search
    def effective_ef(self, ef: int | None) -> int:
        if not self.profile.supports_ef_tuning:
            return self.profile.fixed_ef or 100
        return ef or 64

    def search(self, query: np.ndarray, k: int, ef: int | None = None) -> SearchMeasurement:
        """Top-k with measured compute and modeled engine timings."""
        if not self.indexes:
            raise VectorSearchError(f"{self.profile.name}: no index built")
        use_ef = self.effective_ef(ef)
        start = time.perf_counter()
        merged: list[tuple[float, int]] = []
        for index in self.indexes:
            result = index.topk_search(query, k, ef=use_ef)
            merged.extend((float(d), int(i)) for i, d in result)
        compute = time.perf_counter() - start
        merged.sort()
        merged = merged[:k]
        ids = np.asarray([i for _, i in merged], dtype=np.int64)
        dists = np.asarray([d for d, _ in merged], dtype=np.float32)
        service = compute / self.profile.intra_query_parallelism
        latency = service + self.profile.per_query_overhead_s
        return SearchMeasurement(ids, dists, compute, latency, service)

    def filtered_search(
        self, query: np.ndarray, k: int, allowed: np.ndarray, ef: int | None = None
    ) -> SearchMeasurement:
        """Filtered top-k; pre-filter engines pass the bitmap down, post-filter
        engines search with enlarged k and filter afterwards, re-searching
        until k survivors — the paper's Sec. 5.2 cost argument, executed for
        real."""
        use_ef = self.effective_ef(ef)
        allowed = np.asarray(allowed, dtype=bool)
        start = time.perf_counter()
        if self.profile.prefilter:
            merged: list[tuple[float, int]] = []
            for index in self.indexes:
                result = index.topk_search(
                    query, k, ef=use_ef, filter_fn=lambda i: bool(allowed[i])
                )
                merged.extend((float(d), int(i)) for i, d in result)
        else:
            merged = []
            fetch = k
            total = self.num_vectors
            while True:
                rows: list[tuple[float, int]] = []
                for index in self.indexes:
                    result = index.topk_search(query, fetch, ef=max(use_ef, fetch))
                    rows.extend((float(d), int(i)) for i, d in result)
                rows.sort()
                survivors = [(d, i) for d, i in rows[:fetch] if allowed[i]]
                if len(survivors) >= k or fetch >= total:
                    merged = survivors
                    break
                fetch = min(fetch * 4, total)
        compute = time.perf_counter() - start
        merged.sort()
        merged = merged[:k]
        ids = np.asarray([i for _, i in merged], dtype=np.int64)
        dists = np.asarray([d for d, _ in merged], dtype=np.float32)
        service = compute / self.profile.intra_query_parallelism
        latency = service + self.profile.per_query_overhead_s
        return SearchMeasurement(ids, dists, compute, latency, service)

    # ------------------------------------------------------------- modeled
    def qps(self, mean_service_seconds: float, client_threads: int = 16) -> float:
        """Closed-loop throughput model for ``client_threads`` clients."""
        per_request = mean_service_seconds + self.profile.per_query_overhead_s
        return self.profile.client_efficiency * client_threads / per_request

    def evaluate(
        self,
        dataset: VectorDataset,
        k: int = 10,
        ef: int | None = None,
        num_queries: int | None = None,
        client_threads: int = 16,
    ) -> dict[str, float]:
        """Recall + modeled QPS/latency over the dataset's query set."""
        dataset.with_ground_truth(k)
        queries = dataset.queries
        if num_queries is not None:
            queries = queries[:num_queries]
        hits = 0
        services = []
        latencies = []
        for qi, query in enumerate(queries):
            m = self.search(query, k, ef=ef)
            truth = set(dataset.gt_ids[qi, :k].tolist())
            hits += len(truth & set(m.ids.tolist()))
            services.append(m.service_seconds)
            latencies.append(m.latency_seconds)
        recall = hits / (len(queries) * k)
        mean_service = float(np.mean(services))
        return {
            "system": self.profile.name,
            "recall": recall,
            "qps": self.qps(mean_service, client_threads),
            "latency_ms": float(np.mean(latencies)) * 1000.0,
            "ef": float(self.effective_ef(ef)),
        }
