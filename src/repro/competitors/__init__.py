"""Behavioral simulators for the paper's competitor systems.

Neo4j, Amazon Neptune, and Milvus are not installable offline, so each is
modeled as a *behaviorally constrained* vector system running the same HNSW
code as TigerVector, differing exactly where the paper says they differ:

==============  ===============================================================
System          Constraints encoded
==============  ===============================================================
Neo4j           Lucene-quality index (built without the diversity heuristic,
                which caps recall in the 60-70% band regardless of ef — the
                paper measures 64-67%); **no ef tuning** (one fixed operating
                point); one monolithic, non-distributed index; **post-filter**
                only; high per-query HTTP/JVM overhead; slow single-threaded
                index build.
Neptune         One fixed high-recall operating point (paper: 99.9%), no
                tuning; single non-distributed index; non-atomic updates;
                22.42x hardware cost.
Milvus          Full-featured specialized vector DB: segmented, tunable ef,
                pre-filter; lower multi-core efficiency (Go vs C++, the
                paper's explanation for TigerVector's 1.07-1.61x edge) and a
                much slower raw-vector data loading path (Table 2).
==============  ===============================================================

Search *compute* is always measured for real on the shared HNSW kernels;
engine-level constants (per-query overhead, parallel efficiency, load/build
factors) are declared once in :data:`repro.competitors.base.PROFILES` and
documented against the paper numbers they reproduce.
"""

from .base import PROFILES, SystemProfile, VectorSystemSim
from .milvus_sim import MilvusSim
from .neo4j_sim import Neo4jSim
from .neptune_sim import NeptuneSim
from .tigervector import TigerVectorSystem

__all__ = [
    "MilvusSim",
    "Neo4jSim",
    "NeptuneSim",
    "PROFILES",
    "SystemProfile",
    "TigerVectorSystem",
    "VectorSystemSim",
]
