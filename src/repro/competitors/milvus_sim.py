"""Milvus behavioral simulator.

Milvus is the paper's strongest baseline: a specialized vector database with
segmented HNSW, tunable ef, and pre-filtering. The paper still measures
TigerVector 1.07-1.61x faster and attributes the gap to multi-core
parallelism (MPP engine) and C++ vs Go; that shows up here as a lower
client efficiency and slightly lower intra-query parallelism. Table 2's
data-loading gap (Milvus parses raw vector files; 9.6-22.5x slower than
TigerVector's loading tool) is the load_factor.
"""

from __future__ import annotations

from .base import PROFILES, VectorSystemSim

__all__ = ["MilvusSim"]


class MilvusSim(VectorSystemSim):
    """Segmented, tunable, pre-filtering specialized vector database."""

    def __init__(self, segment_size: int = 20_000, M: int = 16, ef_construction: int = 128):
        super().__init__(
            PROFILES["Milvus"],
            segment_size=segment_size,
            M=M,
            ef_construction=ef_construction,
        )
