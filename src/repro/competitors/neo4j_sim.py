"""Neo4j behavioral simulator.

Encodes the limitations the paper attributes to Neo4j's Lucene-based vector
search (Sec. 2.3, 6.2): no index-parameter tuning (a single operating
point), a Lucene-quality HNSW graph built *without* the diversity heuristic
(which is what caps its recall in the 60-70% band on clustered data —
matching the paper's 64.5-67.5%), one monolithic non-distributed index,
post-filtering only, a slow single-threaded index build (5.4-7.4x in Table
2), and a heavy HTTP/JVM request path.
"""

from __future__ import annotations

from .base import PROFILES, VectorSystemSim

__all__ = ["Neo4jSim"]


class Neo4jSim(VectorSystemSim):
    """Single Lucene-style index; fixed parameters; post-filter."""

    def __init__(self, M: int = 16, ef_construction: int = 128):
        super().__init__(PROFILES["Neo4j"], M=M, ef_construction=ef_construction)
