"""Amazon Neptune behavioral simulator.

Encodes the paper's characterization of Neptune Analytics (Sec. 2.3, 6.2):
one vector index for the entire graph that is not distributed, no parameter
tuning (a single high-recall operating point - the paper measures 99.9%),
explicitly non-atomic vector index updates, and 22.42x more expensive
hardware (1024 m-NCUs at $30.72/hr vs the n2d's $1.37/hr).
"""

from __future__ import annotations

from .base import PROFILES, VectorSystemSim

__all__ = ["NeptuneSim"]


class NeptuneSim(VectorSystemSim):
    """Single non-distributed index at one fixed high-recall point."""

    def __init__(self, M: int = 16, ef_construction: int = 128):
        super().__init__(PROFILES["Neptune"], M=M, ef_construction=ef_construction)

    def update_is_atomic(self) -> bool:
        """Neptune documents that vector-index updates are not atomic."""
        return self.profile.atomic_updates
