"""TigerVector core: the paper's primary contribution.

Submodules are imported lazily (PEP 562) because :mod:`repro.graph.schema`
imports :mod:`repro.core.embedding` while other core modules import the graph
package; eager imports here would create a cycle.
"""

from __future__ import annotations

import importlib
from typing import Any

_SUBMODULES = {
    "embedding",
    "segment",
    "service",
    "delta",
    "vacuum",
    "action",
    "search",
    "distributed",
    "database",
    "auth",
}

_EXPORTS = {
    # name -> (submodule, attribute)
    "EmbeddingType": ("embedding", "EmbeddingType"),
    "EmbeddingSpace": ("embedding", "EmbeddingSpace"),
    "check_compatible": ("embedding", "check_compatible"),
    "EmbeddingSegment": ("segment", "EmbeddingSegment"),
    "EmbeddingService": ("service", "EmbeddingService"),
    "DeltaStore": ("delta", "DeltaStore"),
    "DeltaRecord": ("delta", "DeltaRecord"),
    "VacuumManager": ("vacuum", "VacuumManager"),
    "EmbeddingAction": ("action", "EmbeddingAction"),
    "VectorSearchOptions": ("search", "VectorSearchOptions"),
    "vector_search": ("search", "vector_search"),
    "TigerVectorDB": ("database", "TigerVectorDB"),
    "DistributedSearcher": ("distributed", "DistributedSearcher"),
    "AccessController": ("auth", "AccessController"),
    "Role": ("auth", "Role"),
}

__all__ = sorted(_EXPORTS) + sorted(_SUBMODULES)


def __getattr__(name: str) -> Any:
    if name in _SUBMODULES:
        return importlib.import_module(f".{name}", __name__)
    if name in _EXPORTS:
        module_name, attr = _EXPORTS[name]
        module = importlib.import_module(f".{module_name}", __name__)
        return getattr(module, attr)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
