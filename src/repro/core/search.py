"""The flexible VectorSearch() function (paper Sec. 5.5).

``VectorSearch(vector_attributes, query_vector, k, opts)`` is TigerVector's
composable search API:

- **VectorAttributes** — one or more compatible embedding attributes, possibly
  across vertex types (compatibility is checked by the Sec. 4.1 static
  analysis before any segment is touched);
- **QueryVector** — validated against the attributes' dimensionality;
- **K** — result size;
- optional **filter** — a :class:`~repro.graph.vertex_set.VertexSet`
  candidate set from a prior query block (pre-filtering);
- optional **distance map** — an output Map accumulator receiving
  ``(vertex, distance)`` pairs;
- optional **ef** — index search parameter trading accuracy for speed.

It returns a :class:`VertexSet`, so the result plugs straight back into GSQL
query composition (queries Q2–Q4 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import DimensionMismatchError, VectorSearchError
from ..graph.accumulators import MapAccum
from ..graph.txn import Snapshot
from ..graph.vertex_set import VertexSet
from ..index.bitmap import Bitmap
from ..telemetry import get_telemetry
from .action import EmbeddingAction
from .embedding import check_compatible
from .service import EmbeddingService

__all__ = ["VectorSearchOptions", "vector_search"]


@dataclass
class VectorSearchOptions:
    """Optional VectorSearch parameters (Sec. 5.5 list item 4)."""

    filter: VertexSet | None = None
    distance_map: MapAccum | None = None
    ef: int | None = None


def vector_search(
    service: EmbeddingService,
    snapshot: Snapshot,
    vector_attributes: list[str],
    query_vector: np.ndarray,
    k: int,
    options: VectorSearchOptions | None = None,
) -> VertexSet:
    """Top-k across one or more embedding attributes; returns a VertexSet.

    ``vector_attributes`` entries are ``"VertexType.attr"`` strings.  With a
    ``filter`` vertex set the search pre-filters per segment via bitmaps;
    otherwise each segment wraps its status structure.  Results from
    different attributes are merged by distance into a single global top-k,
    which is well-defined because the compatibility check guarantees a
    shared metric and dimension.
    """
    if k <= 0:
        raise VectorSearchError("k must be positive")
    options = options or VectorSearchOptions()
    schema = service.schema
    resolved = []
    for qualified in vector_attributes:
        vertex_type, embedding = schema.embedding_attribute(qualified)
        resolved.append((qualified, vertex_type, embedding))
    representative = check_compatible(
        [(qualified, emb) for qualified, _, emb in resolved]
    )
    query = np.asarray(query_vector, dtype=np.float32).reshape(-1)
    if query.shape[0] != representative.dimension:
        raise DimensionMismatchError(
            f"query vector has dimension {query.shape[0]}, embedding expects "
            f"{representative.dimension}"
        )

    tel = get_telemetry()
    merged: list[tuple[float, str, int]] = []
    with tel.span(
        "vector.search", k=k, attributes=list(vector_attributes)
    ) as vspan:
        for qualified, vertex_type, _ in resolved:
            store = service.store(vertex_type, qualified.split(".", 1)[1])
            bitmaps = None
            if options.filter is not None:
                vids = options.filter.vids_of_type(vertex_type)
                if not vids:
                    continue
                bitmaps = [
                    Bitmap.wrap(mask)
                    for mask in snapshot.bitmap_from_vids(vertex_type, vids)
                ]
                while len(bitmaps) < store.num_segments:
                    bitmaps.append(Bitmap.empty(store.segment_size))
            action = EmbeddingAction(store)
            with tel.span("vector.attribute", attribute=qualified):
                result = action.topk(
                    query, k, snapshot_tid=snapshot.tid, ef=options.ef, bitmaps=bitmaps
                )
            merged.extend(
                (float(dist), vertex_type, int(vid)) for vid, dist in result
            )
        vspan.set(merged_candidates=len(merged))

    merged.sort(key=lambda item: item[0])
    top = merged[:k]
    out = VertexSet(name="TopK")
    for dist, vertex_type, vid in top:
        out.add(vertex_type, vid)
        if options.distance_map is not None:
            options.distance_map.put((vertex_type, vid), dist)
    return out
