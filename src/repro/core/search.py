"""The flexible VectorSearch() function (paper Sec. 5.5).

``VectorSearch(vector_attributes, query_vector, k, opts)`` is TigerVector's
composable search API:

- **VectorAttributes** — one or more compatible embedding attributes, possibly
  across vertex types (compatibility is checked by the Sec. 4.1 static
  analysis before any segment is touched);
- **QueryVector** — validated against the attributes' dimensionality;
- **K** — result size;
- optional **filter** — a :class:`~repro.graph.vertex_set.VertexSet`
  candidate set from a prior query block (pre-filtering);
- optional **distance map** — an output Map accumulator receiving
  ``(vertex, distance)`` pairs;
- optional **ef** — index search parameter trading accuracy for speed.

It returns a :class:`VertexSet`, so the result plugs straight back into GSQL
query composition (queries Q2–Q4 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import DimensionMismatchError, VectorSearchError
from ..graph.accumulators import MapAccum
from ..graph.txn import Snapshot
from ..graph.vertex_set import VertexSet
from ..index.bitmap import Bitmap
from ..telemetry import get_telemetry
from .action import EmbeddingAction
from .embedding import check_compatible
from .service import EmbeddingService

__all__ = [
    "VectorSearchOptions",
    "build_topk_vertex_set",
    "merge_sharded_topk",
    "vector_search",
    "vector_search_batch",
    "vector_search_merged",
    "vector_search_sharded",
]


@dataclass
class VectorSearchOptions:
    """Optional VectorSearch parameters (Sec. 5.5 list item 4)."""

    filter: VertexSet | None = None
    distance_map: MapAccum | None = None
    ef: int | None = None


def _resolve_attributes(service: EmbeddingService, vector_attributes: list[str]):
    """Resolve ``"VertexType.attr"`` names and run the compatibility check."""
    schema = service.schema
    resolved = []
    for qualified in vector_attributes:
        vertex_type, embedding = schema.embedding_attribute(qualified)
        resolved.append((qualified, vertex_type, embedding))
    representative = check_compatible(
        [(qualified, emb) for qualified, _, emb in resolved]
    )
    return resolved, representative


def _validate_query(query_vector: np.ndarray, representative) -> np.ndarray:
    query = np.asarray(query_vector, dtype=np.float32).reshape(-1)
    if query.shape[0] != representative.dimension:
        raise DimensionMismatchError(
            f"query vector has dimension {query.shape[0]}, embedding expects "
            f"{representative.dimension}"
        )
    return query


def build_topk_vertex_set(
    top: list[tuple[float, str, int]], distance_map: MapAccum | None
) -> VertexSet:
    """Materialize sorted ``(distance, vertex_type, vid)`` triples.

    Shared by the direct :func:`vector_search` path and the serving layer
    (``repro.serve``), so a server answer — cached, fused, or per-query — is
    constructed exactly like a direct call's.
    """
    out = VertexSet(name="TopK")
    for dist, vertex_type, vid in top:
        out.add(vertex_type, vid)
        if distance_map is not None:
            distance_map.put((vertex_type, vid), dist)
    return out


def vector_search_merged(
    service: EmbeddingService,
    snapshot: Snapshot,
    vector_attributes: list[str],
    query_vector: np.ndarray,
    k: int,
    options: VectorSearchOptions | None = None,
) -> list[tuple[float, str, int]]:
    """Global top-k as sorted ``(distance, vertex_type, vid)`` triples.

    The full VectorSearch pipeline minus result materialization; the serving
    layer caches these triples because, unlike a :class:`VertexSet`, they
    are immutable and carry the distances.
    """
    if k <= 0:
        raise VectorSearchError("k must be positive")
    options = options or VectorSearchOptions()
    resolved, representative = _resolve_attributes(service, vector_attributes)
    query = _validate_query(query_vector, representative)

    tel = get_telemetry()
    merged: list[tuple[float, str, int]] = []
    with tel.span(
        "vector.search", k=k, attributes=list(vector_attributes)
    ) as vspan:
        for qualified, vertex_type, _ in resolved:
            store = service.store(vertex_type, qualified.split(".", 1)[1])
            bitmaps = None
            if options.filter is not None:
                vids = options.filter.vids_of_type(vertex_type)
                if not vids:
                    continue
                bitmaps = [
                    Bitmap.wrap(mask)
                    for mask in snapshot.bitmap_from_vids(vertex_type, vids)
                ]
                while len(bitmaps) < store.num_segments:
                    bitmaps.append(Bitmap.empty(store.segment_size))
            action = EmbeddingAction(store)
            with tel.span("vector.attribute", attribute=qualified):
                result = action.topk(
                    query, k, snapshot_tid=snapshot.tid, ef=options.ef, bitmaps=bitmaps
                )
            merged.extend(
                (float(dist), vertex_type, int(vid)) for vid, dist in result
            )
        vspan.set(merged_candidates=len(merged))

    merged.sort(key=lambda item: item[0])
    return merged[:k]


def vector_search_sharded(
    service: EmbeddingService,
    snapshot: Snapshot,
    vector_attributes: list[str],
    query_vector: np.ndarray,
    k: int,
    options: VectorSearchOptions | None = None,
    groups: frozenset | set | None = None,
    group_size: int = 1,
) -> list[tuple[str, tuple[tuple[float, int], ...]]]:
    """Per-attribute partial top-k over a subset of segment groups.

    The shard-owner half of the elastic tier's search: each owning server
    runs this over the segment ordinals whose group (``seg_no //
    group_size``) it owns, and the router merges the partials with
    :func:`merge_sharded_topk`.  Returns one ``(vertex_type, pairs)`` entry
    per attribute in resolution order, where ``pairs`` are the attribute's
    local top-k ``(distance, vid)`` tuples sorted exactly as
    :meth:`EmbeddingAction.topk` sorts them (distance, then vid).

    ``groups=None`` searches every segment, which makes the single-shard
    merge byte-identical to :func:`vector_search_merged`: the per-attribute
    pairs are then the very lists that function flattens, and the merge
    applies the same attribute-ordered stable sort.  With complementary
    group subsets the union of partial top-k lists per attribute contains
    the attribute's global top-k (top-k of a union is contained in the
    union of per-part top-k), and the (distance, vid) total order makes
    the merged result identical regardless of how segments were split.
    """
    if k <= 0:
        raise VectorSearchError("k must be positive")
    if group_size < 1:
        raise VectorSearchError("group_size must be at least 1")
    options = options or VectorSearchOptions()
    resolved, representative = _resolve_attributes(service, vector_attributes)
    query = _validate_query(query_vector, representative)

    tel = get_telemetry()
    parts: list[tuple[str, tuple[tuple[float, int], ...]]] = []
    with tel.span(
        "vector.search_sharded",
        k=k,
        attributes=list(vector_attributes),
        groups=None if groups is None else sorted(groups),
    ):
        for qualified, vertex_type, _ in resolved:
            store = service.store(vertex_type, qualified.split(".", 1)[1])
            bitmaps = None
            if options.filter is not None:
                vids = options.filter.vids_of_type(vertex_type)
                if not vids:
                    parts.append((vertex_type, ()))
                    continue
                bitmaps = [
                    Bitmap.wrap(mask)
                    for mask in snapshot.bitmap_from_vids(vertex_type, vids)
                ]
                while len(bitmaps) < store.num_segments:
                    bitmaps.append(Bitmap.empty(store.segment_size))
            seg_nos = None
            if groups is not None:
                seg_nos = [
                    seg_no
                    for seg_no in range(store.num_segments)
                    if seg_no // group_size in groups
                ]
            action = EmbeddingAction(store)
            result = action.topk(
                query,
                k,
                snapshot_tid=snapshot.tid,
                ef=options.ef,
                bitmaps=bitmaps,
                seg_nos=seg_nos,
            )
            parts.append(
                (
                    vertex_type,
                    tuple(
                        (float(dist), int(vid))
                        for vid, dist in zip(result.ids, result.distances)
                    ),
                )
            )
    return parts


def merge_sharded_topk(
    shard_parts: list[list[tuple[str, tuple[tuple[float, int], ...]]]],
    k: int,
) -> list[tuple[float, str, int]]:
    """Coordinator merge of shard partials into the global sorted triples.

    Every shard's output must come from :func:`vector_search_sharded` over
    the *same attribute list* (so attribute indexes align).  Per attribute,
    the shard pair-lists are merged under the (distance, vid) total order
    and truncated to k — reconstructing what a whole-store
    :meth:`EmbeddingAction.topk` would have returned — then the attribute
    results are flattened in attribute order and stable-sorted by distance,
    which is exactly :func:`vector_search_merged`'s final merge.  The
    output is therefore byte-identical to an unsharded search.
    """
    if not shard_parts:
        return []
    num_attrs = len(shard_parts[0])
    merged: list[tuple[float, str, int]] = []
    for attr_index in range(num_attrs):
        vertex_type = shard_parts[0][attr_index][0]
        pairs: list[tuple[float, int]] = []
        for part in shard_parts:
            pairs.extend(part[attr_index][1])
        pairs.sort()
        merged.extend(
            (float(dist), vertex_type, int(vid)) for dist, vid in pairs[:k]
        )
    merged.sort(key=lambda item: item[0])
    return merged[:k]


def vector_search(
    service: EmbeddingService,
    snapshot: Snapshot,
    vector_attributes: list[str],
    query_vector: np.ndarray,
    k: int,
    options: VectorSearchOptions | None = None,
) -> VertexSet:
    """Top-k across one or more embedding attributes; returns a VertexSet.

    ``vector_attributes`` entries are ``"VertexType.attr"`` strings.  With a
    ``filter`` vertex set the search pre-filters per segment via bitmaps;
    otherwise each segment wraps its status structure.  Results from
    different attributes are merged by distance into a single global top-k,
    which is well-defined because the compatibility check guarantees a
    shared metric and dimension.
    """
    options = options or VectorSearchOptions()
    top = vector_search_merged(
        service, snapshot, vector_attributes, query_vector, k, options
    )
    return build_topk_vertex_set(top, options.distance_map)


def vector_search_batch(
    service: EmbeddingService,
    snapshot: Snapshot,
    vector_attributes: list[str],
    query_vectors: np.ndarray,
    k: int,
    ef: int | None = None,
    min_fused: int = 4,
) -> list[list[tuple[float, str, int]]]:
    """Fused multi-query VectorSearch (the serving micro-batch kernel).

    Returns one sorted top-k triple list per query row.  Batches smaller
    than ``min_fused`` fall back to the per-query path; at or above it every
    segment is visited once for *all* queries:

    - ``ef is None`` (approximate requests) →
      :meth:`EmbeddingStore.search_segment_batch`, exact brute force, so
      recall is never below the per-query path;
    - explicit ``ef`` →
      :meth:`EmbeddingStore.search_segment_multi`, lockstep-beam fused HNSW
      (:meth:`~repro.index.hnsw.HNSWIndex.topk_search_multi`) that honours
      the requested accuracy knob and returns results identical to running
      the per-query path query by query.

    Unfiltered only.
    """
    if k <= 0:
        raise VectorSearchError("k must be positive")
    queries = np.asarray(query_vectors, dtype=np.float32)
    if queries.ndim == 1:
        queries = queries.reshape(1, -1)
    if queries.ndim != 2:
        raise VectorSearchError("query_vectors must be a (Q, d) matrix")
    resolved, representative = _resolve_attributes(service, vector_attributes)
    if queries.shape[1] != representative.dimension:
        raise DimensionMismatchError(
            f"query vectors have dimension {queries.shape[1]}, embedding "
            f"expects {representative.dimension}"
        )

    if queries.shape[0] < min_fused:
        options = VectorSearchOptions(ef=ef)
        return [
            vector_search_merged(
                service, snapshot, vector_attributes, query, k, options
            )
            for query in queries
        ]

    tel = get_telemetry()
    per_query: list[list[tuple[float, str, int]]] = [[] for _ in range(queries.shape[0])]
    with tel.span(
        "vector.search_batch",
        k=k,
        batch=queries.shape[0],
        attributes=list(vector_attributes),
    ):
        for qualified, vertex_type, _ in resolved:
            store = service.store(vertex_type, qualified.split(".", 1)[1])
            for seg_no in range(store.num_segments):
                if ef is None:
                    outputs = store.search_segment_batch(
                        seg_no, queries, k, snapshot_tid=snapshot.tid
                    )
                else:
                    outputs = store.search_segment_multi(
                        seg_no, queries, k, snapshot_tid=snapshot.tid, ef=ef
                    )
                base = seg_no * store.segment_size
                for qi, output in enumerate(outputs):
                    per_query[qi].extend(
                        (float(dist), vertex_type, int(base + off))
                        for off, dist in zip(output.offsets, output.distances)
                    )
    results: list[list[tuple[float, str, int]]] = []
    for merged in per_query:
        merged.sort(key=lambda item: item[0])
        results.append(merged[:k])
    return results
