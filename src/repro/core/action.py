"""EmbeddingAction: segment-parallel vector search with global merge (Sec. 5.1).

TigerVector executes a top-k query by searching each embedding segment's
index independently (thread pool), then merging the local top-k lists into
the global answer.  The plan notation from the paper::

    EmbeddingAction[Top k, {s.content_emb}, query_vector]

A per-segment pre-filter :class:`~repro.index.bitmap.Bitmap` may be supplied
(from a WHERE predicate or a graph pattern); segments whose valid count falls
below the store's threshold flip to brute force automatically inside
:meth:`EmbeddingStore.search_segment`.

The action reports which segments were touched and how many used brute
force — the statistics behind the IC5-vs-IC11 discussion in Sec. 6.5.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..errors import VectorSearchError
from ..graph.mpp import MPPExecutor
from ..index.bitmap import Bitmap
from ..index.interface import SearchResult
from .service import EmbeddingStore

__all__ = ["ActionStats", "EmbeddingAction"]

_SHARED_EXECUTOR = MPPExecutor()


@dataclass
class ActionStats:
    """Execution statistics for one EmbeddingAction invocation."""

    segments_touched: int = 0
    segments_bruteforce: int = 0
    candidates: int = 0
    elapsed_seconds: float = 0.0


class EmbeddingAction:
    """One vector-search operator instance over a single embedding store."""

    def __init__(
        self,
        store: EmbeddingStore,
        executor: MPPExecutor | None = None,
        parallel: bool = True,
    ):
        self.store = store
        self.executor = executor or _SHARED_EXECUTOR
        self.parallel = parallel
        self.last_stats = ActionStats()

    # ------------------------------------------------------------- helpers
    def _segment_bitmaps(
        self, bitmaps: list[Bitmap] | None, num_segments: int
    ) -> list[Bitmap | None]:
        if bitmaps is None:
            return [None] * num_segments
        if len(bitmaps) < num_segments:
            bitmaps = list(bitmaps) + [
                Bitmap.empty(self.store.segment_size)
                for _ in range(num_segments - len(bitmaps))
            ]
        return list(bitmaps[:num_segments])

    def _run_segments(self, fn, seg_nos: list[int]) -> list:
        if not seg_nos:
            return []
        return self.executor.map(fn, seg_nos, parallel=self.parallel)

    # --------------------------------------------------------------- top-k
    def topk(
        self,
        query: np.ndarray,
        k: int,
        snapshot_tid: int,
        ef: int | None = None,
        bitmaps: list[Bitmap] | None = None,
        seg_nos: list[int] | None = None,
    ) -> SearchResult:
        """Global top-k: local per-segment search + coordinator merge.

        ``bitmaps`` is one pre-filter bitmap per segment (or ``None`` for a
        pure search, which wraps the vertex status structure instead).
        ``seg_nos`` restricts the search to a subset of segment ordinals
        (the elastic tier's shard-ownership path); ``None`` searches every
        segment.  Returns global vids (= seg_no * segment_size + offset).
        """
        if k <= 0:
            raise VectorSearchError("k must be positive")
        store = self.store
        num_segments = store.num_segments
        per_segment = self._segment_bitmaps(bitmaps, num_segments)
        stats = ActionStats()
        start = time.perf_counter()

        # Skip segments whose pre-filter is known-empty before dispatch.
        candidates = (
            range(num_segments)
            if seg_nos is None
            else [seg_no for seg_no in seg_nos if 0 <= seg_no < num_segments]
        )
        seg_nos = [
            seg_no
            for seg_no in candidates
            if per_segment[seg_no] is None or per_segment[seg_no].count() > 0
        ]

        def local(seg_no: int):
            return store.search_segment(
                seg_no, query, k, snapshot_tid, ef=ef, bitmap=per_segment[seg_no]
            )

        outputs = self._run_segments(local, seg_nos)
        merged: list[tuple[float, int]] = []
        for out in outputs:
            stats.segments_touched += 1
            stats.segments_bruteforce += int(out.used_bruteforce)
            stats.candidates += len(out.offsets)
            base = out.seg_no * store.segment_size
            merged.extend(zip(out.distances, (base + o for o in out.offsets)))
        merged.sort()
        merged = merged[:k]
        stats.elapsed_seconds = time.perf_counter() - start
        self.last_stats = stats
        if not merged:
            return SearchResult.empty()
        dists, vids = zip(*merged)
        return SearchResult(np.asarray(vids), np.asarray(dists, dtype=np.float32))

    # --------------------------------------------------------------- range
    def range(
        self,
        query: np.ndarray,
        threshold: float,
        snapshot_tid: int,
        ef: int | None = None,
        bitmaps: list[Bitmap] | None = None,
    ) -> SearchResult:
        """Global range search: per-segment RangeSearch + merge (Sec. 5.1)."""
        store = self.store
        num_segments = store.num_segments
        per_segment = self._segment_bitmaps(bitmaps, num_segments)
        stats = ActionStats()
        start = time.perf_counter()
        seg_nos = [
            seg_no
            for seg_no in range(num_segments)
            if per_segment[seg_no] is None or per_segment[seg_no].count() > 0
        ]

        def local(seg_no: int) -> list[tuple[float, int]]:
            # Range search runs against the same MVCC view as topk by
            # growing k until the DiskANN median condition triggers; reuse
            # search_segment so the delta overlay stays consistent.
            results: list[tuple[float, int]] = []
            k = 16
            cap = store.segment_size
            while True:
                out = store.search_segment(
                    seg_no, query, k, snapshot_tid, ef=max(ef or 0, k),
                    bitmap=per_segment[seg_no],
                )
                if not out.offsets:
                    return results
                base = seg_no * store.segment_size
                pairs = list(zip(out.distances, (base + o for o in out.offsets)))
                exhausted = len(pairs) < k or k >= cap
                median = float(np.median(out.distances))
                if threshold <= median or exhausted:
                    return [(d, v) for d, v in pairs if d < threshold]
                k = min(k * 2, cap)

        outputs = self._run_segments(local, seg_nos)
        merged: list[tuple[float, int]] = []
        for out in outputs:
            stats.segments_touched += 1
            stats.candidates += len(out)
            merged.extend(out)
        merged.sort()
        stats.elapsed_seconds = time.perf_counter() - start
        self.last_stats = stats
        if not merged:
            return SearchResult.empty()
        dists, vids = zip(*merged)
        return SearchResult(np.asarray(vids), np.asarray(dists, dtype=np.float32))
