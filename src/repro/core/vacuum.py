"""The two-stage vector vacuum (paper Sec. 4.3, Figure 4).

Flushing deltas to a file is fast (the paper measures ~1s for 1M vectors)
but folding them into an HNSW index is ~30x slower, so TigerVector splits
the vacuum into two independent processes:

- **delta merge** — cut the in-memory delta store into an immutable delta
  file covering TIDs up to a chosen point;
- **index merge** — fold accumulated delta files into a *new* index snapshot
  per segment (parallel ``update_items``), switch segments to the new
  snapshot, and retire the old one until no live transaction can see it.

The index merge tunes its thread count from CPU utilization so background
index building does not starve foreground queries
(:func:`tune_merge_threads`).

:class:`VacuumManager` exposes both one-shot (``run_once``) and background
(``start``/``stop``) operation; tests use one-shot for determinism.

Stores can be assigned to tenants (:meth:`VacuumManager.assign_tenant`)
and each tenant given a per-round record quota
(:meth:`VacuumManager.set_tenant_quota`): once a tenant's stores have
consumed their quota of flushed+merged records in a vacuum round, its
remaining stores are deferred to the next round.  A write-flooding tenant
then cannot monopolize merge bandwidth against everyone else's stores —
the vacuum-side half of the serve tier's noisy-neighbor isolation.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

from ..graph.storage import GraphStore
from ..telemetry import get_telemetry
from .service import EmbeddingService, EmbeddingStore

__all__ = ["VacuumManager", "VacuumStats", "tune_merge_threads"]


def tune_merge_threads(
    cpu_utilization: float,
    max_threads: int | None = None,
    min_threads: int = 1,
) -> int:
    """Pick an index-merge thread count from current CPU utilization.

    The paper monitors CPU utilization and dynamically tunes the number of
    parallel index-update threads to balance merge throughput against
    responsiveness for foreground queries.  The policy here: use the idle
    fraction of the machine, always keeping at least one thread.

    >>> tune_merge_threads(0.0, max_threads=8)
    8
    >>> tune_merge_threads(0.9, max_threads=8)
    1
    """
    if not 0.0 <= cpu_utilization <= 1.0:
        raise ValueError("cpu_utilization must be within [0, 1]")
    cores = max_threads if max_threads is not None else (os.cpu_count() or 4)
    idle = 1.0 - cpu_utilization
    return max(min_threads, int(round(cores * idle)))


@dataclass
class VacuumStats:
    delta_merges: int = 0
    index_merges: int = 0
    records_flushed: int = 0
    records_merged: int = 0
    snapshots_installed: int = 0
    snapshots_gced: int = 0
    #: Store visits skipped because the owning tenant's per-round record
    #: quota was already consumed (the store is retried next round).
    quota_deferrals: int = 0
    last_merge_threads: int = 0
    delta_merge_seconds: float = 0.0
    index_merge_seconds: float = 0.0


class VacuumManager:
    """Drives the delta-merge and index-merge processes for every store."""

    def __init__(
        self,
        graph_store: GraphStore,
        service: EmbeddingService,
        spill_dir: str | os.PathLike | None = None,
        cpu_probe=None,
        max_merge_threads: int | None = None,
    ):
        self.graph_store = graph_store
        self.service = service
        self.spill_dir = Path(spill_dir) if spill_dir else None
        #: Callable returning current CPU utilization in [0, 1]; injectable
        #: for tests.  Defaults to load-average based estimate.
        self.cpu_probe = cpu_probe or _default_cpu_probe
        self.max_merge_threads = max_merge_threads
        self.stats = VacuumStats()
        #: Optional :class:`repro.tier.TierManager`.  Tier rebalancing runs
        #: at the end of each vacuum round — the natural MVCC boundary: the
        #: merges just installed fresh hot snapshots, so demotions/
        #: promotions publish same-tid twins that pinned readers bypass via
        #: the retired list (DESIGN §12).
        self.tier_manager = None
        #: tenant -> max flushed+merged records per vacuum round.
        self.tenant_quotas: dict[str, int] = {}
        #: (vertex_type, attribute name) -> owning tenant; unassigned
        #: stores belong to the unlimited "default" tenant.
        self._store_tenants: dict[tuple[str, str], str] = {}
        self._stop = threading.Event()
        self._threads: list[threading.Thread] = []
        self._merge_lock = threading.Lock()
        # Guards the background-thread handoff only; never held while
        # joining (stop() swaps the list out first, then joins unlocked).
        self._lifecycle_lock = threading.Lock()

    # --------------------------------------------------------- tenant quotas
    def assign_tenant(self, vertex_type: str, attribute: str, tenant: str) -> None:
        """Declare that one embedding store belongs to ``tenant``.

        Takes the merge lock so a reassignment never interleaves with a
        round that is mid-way through attributing consumed quota.
        """
        if not tenant:
            raise ValueError("tenant name must be non-empty")
        with self._merge_lock:
            self._store_tenants[(vertex_type, attribute)] = tenant

    def set_tenant_quota(self, tenant: str, records_per_round: int | None) -> None:
        """Cap a tenant's vacuum work per round; None removes the cap."""
        if records_per_round is not None and records_per_round < 1:
            raise ValueError("records_per_round must be at least 1")
        with self._merge_lock:
            if records_per_round is None:
                self.tenant_quotas.pop(tenant, None)
            else:
                self.tenant_quotas[tenant] = int(records_per_round)

    def _store_tenant(self, store: EmbeddingStore) -> str:
        return self._store_tenants.get(
            (store.vertex_type, store.embedding.name), "default"
        )

    def _quota_exhausted(self, tenant: str, consumed: dict[str, int]) -> bool:
        """True when the tenant's per-round quota is spent (defers the store)."""
        quota = self.tenant_quotas.get(tenant)
        if quota is None or consumed.get(tenant, 0) < quota:
            return False
        self.stats.quota_deferrals += 1
        get_telemetry().inc("vacuum.quota_deferrals")
        return True

    # ------------------------------------------------------------ one-shot
    def delta_merge(self, store: EmbeddingStore, up_to_tid: int | None = None) -> int:
        """Flush the in-memory delta store into a new delta file.

        Returns the number of records flushed.
        """
        target = self.graph_store.last_tid if up_to_tid is None else up_to_tid
        tel = get_telemetry()
        start = time.perf_counter()
        # The merge lock serializes this against index_merge, which reads
        # AND reassigns store.delta_files — an unlocked append between its
        # copy and reassignment would silently drop this delta file when the
        # two background vacuum loops interleave.  Telemetry is recorded
        # after release so its leaf locks never nest under the merge lock.
        with self._merge_lock:
            # Two-phase cut: publish the file before retiring the in-memory
            # prefix, so a concurrent overlay read never lands in a window
            # where the records are in neither place (repro.analysis.explore,
            # vacuum-vs-search scenario).
            dfile = store.delta_store.prepare_cut(target)
            if dfile is None:
                flushed = 0
            else:
                if self.spill_dir is not None:
                    name = f"{store.vertex_type}.{store.embedding.name}.{dfile.from_tid}-{dfile.to_tid}.delta"
                    dfile.save(self.spill_dir / name)
                store.delta_files.append(dfile)
                store.delta_store.commit_cut(dfile)
                self.stats.delta_merges += 1
                self.stats.records_flushed += len(dfile)
                self.stats.delta_merge_seconds += time.perf_counter() - start
                flushed = len(dfile)
        if flushed and tel.enabled:
            tel.observe("vacuum.delta_merge_seconds", time.perf_counter() - start)
            tel.observe("vacuum.delta_size", flushed)
        return flushed

    def index_merge(self, store: EmbeddingStore, num_threads: int | None = None) -> int:
        """Fold all flushed delta files into new per-segment index snapshots.

        Returns the number of records merged.  Old snapshots and consumed
        delta files are released only once no running transaction can still
        read them.
        """
        tel = get_telemetry()
        merge_started = time.perf_counter()
        with self._merge_lock:
            files = list(store.delta_files)
            if not files:
                # Nothing to merge, but previously retired files/snapshots
                # may have become unreachable since the last merge.
                self._gc_store(store)
                return 0
            if num_threads is None:
                num_threads = tune_merge_threads(
                    self.cpu_probe(), max_threads=self.max_merge_threads
                )
            self.stats.last_merge_threads = num_threads
            start = time.perf_counter()
            new_tid = max(f.to_tid for f in files)
            merged = 0
            seg_records: dict[int, list] = {}
            for dfile in files:
                for record in dfile.records:
                    seg_records.setdefault(record.vid // store.segment_size, []).append(record)
            for seg_no, records in sorted(seg_records.items()):
                segment = store.segment(seg_no)
                snapshot = segment.build_next_snapshot(
                    records, new_tid, store.segment_size, num_threads=num_threads
                )
                segment.install_snapshot(snapshot)
                self.stats.snapshots_installed += 1
                merged += len(records)
            # Consume the delta files: they move to the retired list so
            # readers older than this merge can still overlay them; both
            # they and old index snapshots are reclaimed only once no live
            # snapshot predates the merge (paper Sec. 4.3).  Retire *before*
            # removing so a concurrent overlay read (retired list is read
            # first) never finds a file in neither list; brief
            # double-visibility is benign under last-write-wins overlays.
            store.retired_delta_files.extend((new_tid, f) for f in files)
            store.delta_files = [f for f in store.delta_files if f not in files]
            self._gc_store(store)
            self.stats.index_merges += 1
            self.stats.records_merged += merged
            self.stats.index_merge_seconds += time.perf_counter() - start
        if tel.enabled:
            tel.observe(
                "vacuum.index_merge_seconds", time.perf_counter() - merge_started
            )
            tel.inc("vacuum.records_merged", merged)
        return merged

    def _gc_store(self, store: EmbeddingStore) -> None:
        """Reclaim retired delta files and index snapshots no reader needs."""
        min_tid = self.graph_store.min_active_snapshot_tid()
        survivors = []
        for release_tid, dfile in store.retired_delta_files:
            if min_tid >= release_tid:
                if dfile.path is not None and dfile.path.exists():
                    dfile.path.unlink()
            else:
                survivors.append((release_tid, dfile))
        store.retired_delta_files = survivors
        reclaimed = 0
        for segment in store.segments():
            reclaimed += segment.gc_snapshots(min_tid)
        self.stats.snapshots_gced += reclaimed
        if reclaimed:
            get_telemetry().inc("vacuum.versions_reclaimed", reclaimed)

    def run_once(self, num_threads: int | None = None) -> dict:
        """One full vacuum round across every embedding store (+ graph vacuum).

        Stores whose tenant has already consumed its per-round quota are
        deferred (counted in ``quota_deferred``) and picked up next round.
        """
        flushed = merged = deferred = 0
        consumed: dict[str, int] = {}
        for store in self.service.stores():
            tenant = self._store_tenant(store)
            if self._quota_exhausted(tenant, consumed):
                deferred += 1
                continue
            store_flushed = self.delta_merge(store)
            store_merged = self.index_merge(store, num_threads=num_threads)
            consumed[tenant] = consumed.get(tenant, 0) + store_flushed + store_merged
            flushed += store_flushed
            merged += store_merged
        graph_rebuilt = self.graph_store.vacuum()
        tier = self.tier_manager
        rebalanced = tier.rebalance() if tier is not None else {}
        return {
            "flushed": flushed,
            "merged": merged,
            "quota_deferred": deferred,
            "graph_segments_rebuilt": graph_rebuilt,
            "tier": rebalanced,
        }

    # ----------------------------------------------------------- background
    def start(self, delta_interval: float = 0.05, index_interval: float = 0.2) -> None:
        """Run the two vacuum processes as background threads."""

        def delta_loop() -> None:
            while not self._stop.wait(delta_interval):
                consumed: dict[str, int] = {}
                for store in self.service.stores():
                    tenant = self._store_tenant(store)
                    if self._quota_exhausted(tenant, consumed):
                        continue
                    consumed[tenant] = consumed.get(tenant, 0) + self.delta_merge(store)

        def index_loop() -> None:
            while not self._stop.wait(index_interval):
                consumed: dict[str, int] = {}
                for store in self.service.stores():
                    tenant = self._store_tenant(store)
                    if self._quota_exhausted(tenant, consumed):
                        continue
                    consumed[tenant] = consumed.get(tenant, 0) + self.index_merge(store)
                self.graph_store.vacuum()
                tier = self.tier_manager
                if tier is not None:
                    tier.rebalance()

        with self._lifecycle_lock:
            if self._threads:
                return
            self._stop.clear()
            self._threads = [
                threading.Thread(target=delta_loop, name="vacuum-delta-merge", daemon=True),
                threading.Thread(target=index_loop, name="vacuum-index-merge", daemon=True),
            ]
            threads = list(self._threads)
        for thread in threads:
            thread.start()

    def stop(self) -> None:
        self._stop.set()
        with self._lifecycle_lock:
            threads, self._threads = self._threads, []
        for thread in threads:
            thread.join(timeout=5)


def _default_cpu_probe() -> float:
    """Rough CPU utilization estimate from the 1-minute load average."""
    try:
        load = os.getloadavg()[0]
    except OSError:  # pragma: no cover - platform without getloadavg
        return 0.5
    cores = os.cpu_count() or 1
    return min(1.0, load / cores)
