"""The embedding service module (paper Sec. 4.2–4.3).

TigerVector manages vector storage separately from the graph through an
*embedding service*.  :class:`EmbeddingStore` owns everything for one
``(vertex_type, embedding_attribute)`` pair — embedding segments, the
in-memory delta store, flushed delta files — and serves snapshot-consistent
per-segment searches that combine the index snapshot with a brute-force
overlay of unmerged deltas.  :class:`EmbeddingService` is the registry of
stores and the commit hook installed into the :class:`~repro.graph.storage.
GraphStore`, which is what makes mixed graph/vector transactions atomic.
"""

from __future__ import annotations

import threading
from typing import Iterable, Iterator

import numpy as np

from ..analysis.hooks import schedule_point
from ..errors import UnknownTypeError, VectorSearchError
from ..graph.schema import GraphSchema
from ..index.bitmap import Bitmap
from ..index.kernels import DistanceKernel
from ..index.pq import PQSearchConfig
from ..telemetry import get_telemetry
from .delta import DELETE, UPSERT, DeltaFile, DeltaRecord, DeltaStore
from .embedding import EmbeddingType
from .segment import EmbeddingSegment, SegmentSnapshot

__all__ = ["EmbeddingService", "EmbeddingStore", "SegmentSearchOutput"]


class SegmentSearchOutput:
    """Local top-k from one segment: parallel (offset, distance) lists."""

    __slots__ = ("seg_no", "offsets", "distances", "used_bruteforce")

    def __init__(self, seg_no: int, offsets: list[int], distances: list[float], used_bruteforce: bool):
        self.seg_no = seg_no
        self.offsets = offsets
        self.distances = distances
        self.used_bruteforce = used_bruteforce


class EmbeddingStore:
    """All embedding segments plus delta machinery for one vector attribute."""

    def __init__(
        self,
        vertex_type: str,
        embedding: EmbeddingType,
        segment_size: int,
        bf_threshold: int | None = None,
    ):
        self.vertex_type = vertex_type
        self.embedding = embedding
        self.segment_size = segment_size
        #: Below this many valid points a segment search flips to brute force
        #: (Sec. 5.1's first optimization).
        self.bf_threshold = bf_threshold if bf_threshold is not None else max(64, segment_size // 16)
        self.delta_store = DeltaStore()
        self.delta_files: list[DeltaFile] = []
        #: Delta files already folded into index snapshots but still needed
        #: by readers older than that merge; each entry is
        #: ``(release_tid, file)`` — droppable once every live snapshot's
        #: TID reaches ``release_tid`` (paper Sec. 4.3: old snapshots and
        #: delta files are deleted only after the new snapshot is visible to
        #: all running transactions).
        self.retired_delta_files: list[tuple[int, DeltaFile]] = []
        self._segments: list[EmbeddingSegment] = []
        self._lock = threading.Lock()
        #: Chaos-testing gate (repro.faults): called with the segment number
        #: at the top of every search so injected per-segment exceptions
        #: exercise callers' retry/failover paths.  None in production.
        self.fault_hook = None
        #: Tiering observer (repro.tier): called with the segment number at
        #: the top of every search so the TierManager can count per-segment
        #: accesses.  None when tiering is off.
        self.access_hook = None
        #: Two-phase (ADC candidates → exact rerank) policy for cold
        #: segments.  None means tiering/PQ is off, and no search path
        #: deviates from the full-precision behaviour by a single byte.
        self.pq_config: PQSearchConfig | None = None

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        del state["_lock"]  # locks are not picklable; recreate on load
        state["fault_hook"] = None  # injector closures don't survive pickling
        state["access_hook"] = None  # tier-manager closures likewise
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    # ------------------------------------------------------------ segments
    def segment(self, seg_no: int) -> EmbeddingSegment:
        with self._lock:
            while len(self._segments) <= seg_no:
                self._segments.append(
                    EmbeddingSegment(self.embedding, len(self._segments), self.segment_size)
                )
            return self._segments[seg_no]

    @property
    def num_segments(self) -> int:
        return len(self._segments)

    def segments(self) -> list[EmbeddingSegment]:
        with self._lock:
            return list(self._segments)

    def _ensure_segments_for(self, vids: Iterable[int]) -> None:
        max_vid = max(vids, default=-1)
        if max_vid >= 0:
            self.segment(max_vid // self.segment_size)

    # -------------------------------------------------------------- deltas
    def append_deltas(self, records: list[DeltaRecord]) -> None:
        schedule_point("store.delta.append")
        self._ensure_segments_for(r.vid for r in records)
        self.delta_store.append(records)

    def overlay_records(self, seg_no: int, low_tid: int, high_tid: int) -> list[DeltaRecord]:
        """Deltas for one segment with ``low_tid < tid <= high_tid``.

        Spans both flushed delta files and the in-memory store, in TID order,
        so queries see every committed-but-unmerged update.
        """
        lo = seg_no * self.segment_size
        hi = lo + self.segment_size
        out: list[DeltaRecord] = []
        files = [f for _, f in self.retired_delta_files] + self.delta_files
        for dfile in files:
            if dfile.to_tid <= low_tid or dfile.from_tid >= high_tid:
                continue
            out.extend(
                r for r in dfile.records if low_tid < r.tid <= high_tid and lo <= r.vid < hi
            )
        out.extend(
            r
            for r in self.delta_store.records_between(low_tid, high_tid)
            if lo <= r.vid < hi
        )
        return out

    def pending_delta_count(self) -> int:
        return len(self.delta_store) + sum(len(f) for f in self.delta_files)

    def watermark(self) -> tuple[int, int, int, int]:
        """Version watermark for snapshot-keyed result caching (repro.serve).

        The tuple changes whenever anything that a *fresh* snapshot of this
        store could read has changed:

        - ``len(segments)`` and ``max(segment snapshot TIDs)`` move on
          segment growth, bulk load, and index merge;
        - ``delta_store.flushed_tid`` moves on every delta-merge cut (it is
          monotone nondecreasing, so the tuple never repeats across a cut
          even though ``max_tid`` resets to 0);
        - ``delta_store.max_tid`` moves on every commit that touches this
          store.

        Two equal watermarks therefore bracket a window with no store-
        affecting commit or vacuum, and MVCC guarantees any two snapshots
        taken in that window read identical state.  Known (documented)
        exception: ``bulk_load`` replaying the *same* TID mutates segment
        snapshots in place without moving the watermark — that path is the
        offline ingest fast path, never used on a serving store.
        """
        schedule_point("store.watermark.read")
        segs = self.segments()
        return (
            len(segs),
            max((seg.snapshot_tid for seg in segs), default=0),
            self.delta_store.flushed_tid,
            self.delta_store.max_tid,
        )

    @staticmethod
    def watermark_tid(mark: tuple[int, int, int, int]) -> int:
        """Highest graph TID a :meth:`watermark` tuple has observed.

        Commits bump the watermark (via the embedding hook, inside the
        graph store's commit critical section) *before* the store publishes
        ``last_tid``, so a concurrently read watermark can run ahead of any
        snapshot pinned afterwards.  Comparing this ceiling against the
        snapshot's TID is how the serving cache detects that interleaving:
        ``watermark_tid(mark) > snapshot.tid`` means the key describes
        state the snapshot cannot see, and the result must not be cached
        under it.
        """
        return max(mark[1], mark[2], mark[3])

    @staticmethod
    def watermark_lag(marks, snapshot_tid: int) -> int:
        """How far ``snapshot_tid`` trails the freshest watermark component.

        ``marks`` is an iterable of :meth:`watermark` tuples (one per store a
        query touches).  The lag is zero in steady state; it goes positive
        exactly inside the mid-publication commit window (embedding hooks
        fired, ``last_tid`` not yet published), which is the staleness the
        serving SLA path bounds: a request with ``max_staleness=0`` insists
        on a snapshot that covers every observed watermark TID.
        """
        ceiling = max(EmbeddingStore.watermark_tid(mark) for mark in marks)
        return max(0, ceiling - snapshot_tid)

    # ------------------------------------------------------------ loading
    def bulk_load(self, vids: np.ndarray, vectors: np.ndarray, tid: int, num_threads: int = 1) -> None:
        """Partition a bulk batch by segment and build each directly."""
        vids = np.asarray(vids, dtype=np.int64)
        vectors = np.asarray(vectors, dtype=np.float32)
        if vids.size != vectors.shape[0]:
            raise VectorSearchError("vids and vectors length mismatch")
        seg_nos = vids // self.segment_size
        for seg_no in np.unique(seg_nos):
            mask = seg_nos == seg_no
            self.segment(int(seg_no)).bulk_load(
                vids[mask] % self.segment_size, vectors[mask], tid, num_threads=num_threads
            )

    # -------------------------------------------------------------- reads
    def get_embedding(self, vid: int, snapshot_tid: int | None = None) -> np.ndarray | None:
        """GetEmbedding with MVCC overlay: deltas beat the index snapshot."""
        seg_no, offset = divmod(vid, self.segment_size)
        if seg_no >= self.num_segments:
            return None
        segment = self.segment(seg_no)
        if snapshot_tid is None:
            # "Latest committed" must cover the index snapshot, flushed-but-
            # unmerged delta files, AND the in-memory store.
            snapshot_tid = max(
                segment.snapshot_tid,
                self.delta_store.flushed_tid,
                self.delta_store.max_tid,
            )
        snap = segment.snapshot_for(snapshot_tid)
        last = None
        for record in self.overlay_records(seg_no, snap.tid, snapshot_tid):
            if record.vid == vid:
                last = record
        if last is not None:
            return None if last.action == DELETE else np.array(last.vector, dtype=np.float32)
        return segment.get_vector(offset, snapshot_tid)

    def live_count(self) -> int:
        return sum(seg.live_count() for seg in self.segments())

    # ------------------------------------------------------------- search
    def _segment_view(
        self, seg_no: int, snapshot_tid: int, bitmap: Bitmap | None
    ) -> tuple["SegmentSnapshot", dict[int, DeltaRecord], np.ndarray]:
        """Resolve one segment's MVCC read view for a search.

        Returns ``(snap, overlay_last, allowed)`` where ``overlay_last`` is
        the last-writer-wins delta record per local offset in the overlay
        window and ``allowed`` is the validity mask (present in the index
        snapshot, passes the pre-filter, not superseded by a delta).  When
        there is no overlay and no filter, ``allowed`` *wraps*
        ``snap.present`` without copying (Sec. 5.1 reuse).
        """
        segment = self.segment(seg_no)
        while True:
            flushed = self.delta_store.flushed_tid
            snap = segment.snapshot_for(snapshot_tid)
            overlay = self.overlay_records(seg_no, snap.tid, snapshot_tid)
            # TOCTOU guards (both interleavings found by
            # repro.analysis.explore, vacuum-vs-search scenario):
            #
            # - An *index merge* landing between the two reads above installs
            #   a snapshot that covers this reader and may reclaim the delta
            #   files the overlay needed, leaving ``snap`` stale and
            #   ``overlay`` empty.  The merge flips the segment's applicable
            #   snapshot TID, so re-resolving detects it.
            # - A *delta merge* landing mid-overlay moves records from the
            #   in-memory store into a delta file after the file list was
            #   read but before the store was — invisible to the snapshot
            #   TID.  ``flushed_tid`` is bumped only after the file is
            #   published (two-phase cut), so an unchanged value brackets a
            #   consistent read.
            if (
                segment.snapshot_for(snapshot_tid).tid == snap.tid
                and self.delta_store.flushed_tid == flushed
            ):
                break
        # Last-writer-wins per offset within the overlay window.
        overlay_last: dict[int, DeltaRecord] = {}
        for record in overlay:
            overlay_last[record.vid % self.segment_size] = record

        if bitmap is None:
            allowed = snap.present  # wrap, don't copy (Sec. 5.1 reuse)
        else:
            allowed = bitmap.mask & snap.present
        if overlay_last:
            allowed = allowed.copy() if allowed is snap.present else allowed
            for offset in overlay_last:
                allowed[offset] = False
        return snap, overlay_last, allowed

    def _cold_topk(
        self,
        snap: "SegmentSnapshot",
        query: np.ndarray,
        k: int,
        allowed: np.ndarray,
    ) -> list[tuple[float, int]]:
        """Two-phase top-k on a cold snapshot (DESIGN §12).

        Phase one scans the PQ codes of every allowed offset with the ADC
        kernel and keeps the top ``k · rerank_factor`` candidates; phase two
        gathers *only those rows* from the (possibly memmapped) raw store
        and computes exact distances.  The full row matrix is never
        materialized, which is the entire point of the cold tier.
        """
        offsets = np.flatnonzero(allowed)
        if offsets.size == 0:
            return []
        tel = get_telemetry()
        tel.inc("pq.adc_scans")
        pq = snap.pq
        kernel = snap._kernel
        if kernel is None or kernel.metric is not self.embedding.metric:
            # Reuse the snapshot's lazy-kernel slot: PQKernel implements the
            # DistanceKernel contract and codes are immutable, so the same
            # benign build race applies as for hot scan kernels.
            kernel = pq.kernel(self.embedding.metric)
            snap._kernel = kernel
        ctx = kernel.query(query)
        adc = kernel.distances(ctx, offsets)
        cfg = self.pq_config or PQSearchConfig()
        take = min(cfg.candidates(k), offsets.size)
        if take < offsets.size:
            part = np.argpartition(adc, take - 1)[:take]
        else:
            part = np.arange(offsets.size)
        cand = offsets[part]
        tel.observe("pq.rerank_candidates", cand.size)
        if cfg.rerank:
            raw = np.asarray(snap.vectors[cand], dtype=np.float32)
            rkernel = DistanceKernel.for_matrix(raw, self.embedding.metric)
            dists = rkernel.distances_prefix(rkernel.query(query), cand.size)
        else:
            dists = adc[part]
        top = min(k, cand.size)
        keep = np.argpartition(dists, top - 1)[:top] if top < cand.size else np.arange(cand.size)
        return [(float(dists[i]), int(cand[i])) for i in keep]

    @staticmethod
    def _overlay_kernel(
        overlay_last: dict[int, DeltaRecord],
        fresh_offsets: list[int],
        metric,
    ) -> DistanceKernel:
        """Transient distance kernel over the overlay's upserted vectors.

        Built per search (overlays are small and change every commit); both
        the per-query and the fused paths construct it the same way so their
        overlay distances are computed by identical calls.
        """
        fresh_vectors = np.stack(
            [overlay_last[off].vector for off in fresh_offsets]
        ).astype(np.float32)
        return DistanceKernel.for_matrix(fresh_vectors, metric)

    def search_segment(
        self,
        seg_no: int,
        query: np.ndarray,
        k: int,
        snapshot_tid: int,
        ef: int | None = None,
        bitmap: Bitmap | None = None,
        bf_threshold: int | None = None,
    ) -> SegmentSearchOutput:
        """Top-k on one segment: index snapshot + delta overlay, filtered.

        ``bitmap`` is the pre-filter validity mask over local offsets (None
        means "wrap the vertex status structure", i.e. everything present).
        """
        fault_hook = self.fault_hook
        if fault_hook is not None:
            fault_hook(seg_no)  # may raise FaultInjectionError (chaos tests)
        access_hook = self.access_hook
        if access_hook is not None:
            access_hook(seg_no)  # tier-manager heat accounting
        snap, overlay_last, allowed = self._segment_view(seg_no, snapshot_tid, bitmap)

        threshold = self.bf_threshold if bf_threshold is None else bf_threshold
        metric = self.embedding.metric
        valid_count = int(np.count_nonzero(allowed))

        results: list[tuple[float, int]] = []
        used_bruteforce = False
        if valid_count > 0:
            if snap.pq is not None:
                get_telemetry().inc("tier.cold_hits")
                used_bruteforce = True
                results.extend(self._cold_topk(snap, query, k, allowed))
            elif valid_count < threshold:
                used_bruteforce = True
                offsets = np.flatnonzero(allowed)
                kernel = snap.kernel(metric)
                dists = kernel.distances(kernel.query(query), offsets)
                top = min(k, offsets.size)
                part = np.argpartition(dists, top - 1)[:top]
                for i in part:
                    results.append((float(dists[i]), int(offsets[i])))
            else:
                mask = allowed

                def filter_fn(offset: int) -> bool:
                    return bool(mask[offset])

                found = snap.index.topk_search(query, k, ef=ef, filter_fn=filter_fn)
                results.extend((float(d), int(o)) for o, d in found)

        # Brute force over overlay upserts (still subject to the pre-filter).
        fresh_offsets = [
            off
            for off, record in overlay_last.items()
            if record.action == UPSERT and (bitmap is None or bitmap.is_valid(off))
        ]
        if fresh_offsets:
            okernel = self._overlay_kernel(overlay_last, fresh_offsets, metric)
            dists = okernel.distances_prefix(okernel.query(query), len(fresh_offsets))
            results.extend((float(d), int(o)) for d, o in zip(dists, fresh_offsets))

        results.sort()
        results = results[:k]
        return SegmentSearchOutput(
            seg_no,
            offsets=[o for _, o in results],
            distances=[d for d, _ in results],
            used_bruteforce=used_bruteforce,
        )

    def search_segment_multi(
        self,
        seg_no: int,
        queries: np.ndarray,
        k: int,
        snapshot_tid: int,
        ef: int | None = None,
    ) -> list[SegmentSearchOutput]:
        """Fused multi-query :meth:`search_segment` (explicit-``ef`` serving).

        Replicates the per-query path's semantics *exactly* — same
        brute-force-vs-HNSW flip, same overlay handling, same tie-breaks —
        but shares the per-segment work across the batch: one MVCC view
        resolution, one snapshot-kernel gather for brute-force scans, and
        lockstep-beam :meth:`~repro.index.hnsw.HNSWIndex.topk_search_multi`
        HNSW traversal.  Every distance is produced by the same kernel calls
        as the solo path, so results are identical (not merely close) to
        running :meth:`search_segment` per query.  Unfiltered only, like
        :meth:`search_segment_batch`.
        """
        fault_hook = self.fault_hook
        if fault_hook is not None:
            fault_hook(seg_no)  # may raise FaultInjectionError (chaos tests)
        access_hook = self.access_hook
        if access_hook is not None:
            access_hook(seg_no)  # tier-manager heat accounting
        queries = np.asarray(queries, dtype=np.float32)
        metric = self.embedding.metric
        snap, overlay_last, allowed = self._segment_view(seg_no, snapshot_tid, None)

        threshold = self.bf_threshold
        valid_count = int(np.count_nonzero(allowed))
        num_queries = queries.shape[0]
        per_query: list[list[tuple[float, int]]] = [[] for _ in range(num_queries)]

        used_bruteforce = False
        if valid_count > 0:
            if snap.pq is not None:
                # Cold segment: each query runs the same two-phase
                # evaluation as the solo path, so fused == per-query.
                get_telemetry().inc("tier.cold_hits")
                used_bruteforce = True
                for qi in range(num_queries):
                    per_query[qi].extend(self._cold_topk(snap, queries[qi], k, allowed))
            elif valid_count < threshold:
                used_bruteforce = True
                offsets = np.flatnonzero(allowed)
                kernel = snap.kernel(metric)
                top = min(k, offsets.size)
                for qi in range(num_queries):
                    dists = kernel.distances(kernel.query(queries[qi]), offsets)
                    part = np.argpartition(dists, top - 1)[:top]
                    per_query[qi].extend(
                        (float(dists[i]), int(offsets[i])) for i in part
                    )
            else:
                mask = allowed

                def filter_fn(offset: int) -> bool:
                    return bool(mask[offset])

                for qi, found in enumerate(
                    snap.index.topk_search_multi(queries, k, ef=ef, filter_fn=filter_fn)
                ):
                    per_query[qi].extend((float(d), int(o)) for o, d in found)

        fresh_offsets = [
            off for off, record in overlay_last.items() if record.action == UPSERT
        ]
        if fresh_offsets:
            okernel = self._overlay_kernel(overlay_last, fresh_offsets, metric)
            for qi in range(num_queries):
                dists = okernel.distances_prefix(
                    okernel.query(queries[qi]), len(fresh_offsets)
                )
                per_query[qi].extend(
                    (float(d), int(o)) for d, o in zip(dists, fresh_offsets)
                )

        outputs: list[SegmentSearchOutput] = []
        for results in per_query:
            results.sort()
            results = results[:k]
            outputs.append(
                SegmentSearchOutput(
                    seg_no,
                    offsets=[o for _, o in results],
                    distances=[d for d, _ in results],
                    used_bruteforce=used_bruteforce,
                )
            )
        return outputs

    def search_segment_batch(
        self,
        seg_no: int,
        queries: np.ndarray,
        k: int,
        snapshot_tid: int,
    ) -> list[SegmentSearchOutput]:
        """Fused multi-query top-k on one segment (serving micro-batch path).

        All Q queries share a single pass over the segment's valid snapshot
        vectors (one :func:`batch_distances_multi` matmul) plus one pass over
        the delta overlay, instead of Q separate HNSW traversals.  Exact
        brute force, so every per-query result is at least as good as the
        per-query HNSW path.  Unfiltered only — the micro-batcher never
        fuses filtered requests.
        """
        fault_hook = self.fault_hook
        if fault_hook is not None:
            fault_hook(seg_no)  # may raise FaultInjectionError (chaos tests)
        access_hook = self.access_hook
        if access_hook is not None:
            access_hook(seg_no)  # tier-manager heat accounting
        queries = np.asarray(queries, dtype=np.float32)
        metric = self.embedding.metric
        snap, overlay_last, allowed = self._segment_view(seg_no, snapshot_tid, None)

        if snap.pq is not None:
            return self._batch_cold(seg_no, snap, queries, k, overlay_last, allowed)

        dist_blocks: list[np.ndarray] = []
        offset_blocks: list[np.ndarray] = []
        offsets = np.flatnonzero(allowed)
        if offsets.size:
            kernel = snap.kernel(metric)
            dist_blocks.append(kernel.distances_multi(kernel.queries(queries), offsets))
            offset_blocks.append(offsets)
        fresh_offsets = [
            off for off, record in overlay_last.items() if record.action == UPSERT
        ]
        if fresh_offsets:
            okernel = self._overlay_kernel(overlay_last, fresh_offsets, metric)
            dist_blocks.append(
                okernel.distances_multi_prefix(okernel.queries(queries), len(fresh_offsets))
            )
            offset_blocks.append(np.asarray(fresh_offsets, dtype=np.int64))

        num_queries = queries.shape[0]
        if not dist_blocks:
            return [
                SegmentSearchOutput(seg_no, offsets=[], distances=[], used_bruteforce=True)
                for _ in range(num_queries)
            ]

        dists = dist_blocks[0] if len(dist_blocks) == 1 else np.concatenate(dist_blocks, axis=1)
        cand_offsets = (
            offset_blocks[0] if len(offset_blocks) == 1 else np.concatenate(offset_blocks)
        )
        top = min(k, cand_offsets.size)
        outputs: list[SegmentSearchOutput] = []
        for qi in range(num_queries):
            row = dists[qi]
            if top < cand_offsets.size:
                part = np.argpartition(row, top - 1)[:top]
            else:
                part = np.arange(cand_offsets.size)
            # Sort (distance, offset) pairs so ties break by offset exactly
            # like the per-query path's ``results.sort()``.
            pairs = sorted(
                (float(row[i]), int(cand_offsets[i])) for i in part
            )
            outputs.append(
                SegmentSearchOutput(
                    seg_no,
                    offsets=[o for _, o in pairs],
                    distances=[d for d, _ in pairs],
                    used_bruteforce=True,
                )
            )
        return outputs

    def _batch_cold(
        self,
        seg_no: int,
        snap: "SegmentSnapshot",
        queries: np.ndarray,
        k: int,
        overlay_last: dict[int, DeltaRecord],
        allowed: np.ndarray,
    ) -> list[SegmentSearchOutput]:
        """Micro-batch path over a cold segment.

        The snapshot part is the two-phase (ADC → rerank) evaluation the
        per-query path runs — never an exact full scan, which would
        materialize the cold rows — and the overlay part is the usual raw
        brute force; results therefore match :meth:`search_segment` on the
        same view, including the sorted (distance, offset) tie-break.
        """
        get_telemetry().inc("tier.cold_hits")
        metric = self.embedding.metric
        fresh_offsets = [
            off for off, record in overlay_last.items() if record.action == UPSERT
        ]
        okernel = (
            self._overlay_kernel(overlay_last, fresh_offsets, metric)
            if fresh_offsets
            else None
        )
        outputs: list[SegmentSearchOutput] = []
        for qi in range(queries.shape[0]):
            pairs = self._cold_topk(snap, queries[qi], k, allowed)
            if okernel is not None:
                dists = okernel.distances_prefix(
                    okernel.query(queries[qi]), len(fresh_offsets)
                )
                pairs.extend((float(d), int(o)) for d, o in zip(dists, fresh_offsets))
            pairs.sort()
            pairs = pairs[:k]
            outputs.append(
                SegmentSearchOutput(
                    seg_no,
                    offsets=[o for _, o in pairs],
                    distances=[d for d, _ in pairs],
                    used_bruteforce=True,
                )
            )
        return outputs

    # --------------------------------------------------------------- stats
    def stats(self) -> dict:
        segs = self.segments()
        return {
            "vertex_type": self.vertex_type,
            "attribute": self.embedding.name,
            "segments": len(segs),
            "live_vectors": sum(s.live_count() for s in segs),
            "pending_deltas": self.pending_delta_count(),
            "index": [
                s.index.stats.snapshot() if s.index is not None else {"tier": "cold"}
                for s in segs
            ],
        }


class EmbeddingService:
    """Registry of embedding stores + the commit hook wiring."""

    def __init__(self, schema: GraphSchema, segment_size: int, bf_threshold: int | None = None):
        self.schema = schema
        self.segment_size = segment_size
        self.bf_threshold = bf_threshold
        self._stores: dict[tuple[str, str], EmbeddingStore] = {}
        self._lock = threading.Lock()

    def store(self, vertex_type: str, attr: str) -> EmbeddingStore:
        key = (vertex_type, attr)
        existing = self._stores.get(key)
        if existing is not None:
            return existing
        with self._lock:
            existing = self._stores.get(key)
            if existing is not None:
                return existing
            embedding = self.schema.vertex_type(vertex_type).embedding(attr)
            store = EmbeddingStore(
                vertex_type, embedding, self.segment_size, bf_threshold=self.bf_threshold
            )
            self._stores[key] = store
            return store

    def stores(self) -> Iterator[EmbeddingStore]:
        return iter(list(self._stores.values()))

    def attach_store(self, vertex_type: str, attr: str, store: EmbeddingStore) -> None:
        """Install a pre-built store (bench/recovery harness hook).

        The store must match the schema's embedding metadata for
        ``vertex_type.attr``; benchmarks use this to reuse an expensive
        HNSW build across runs instead of re-ingesting vectors.
        """
        embedding = self.schema.vertex_type(vertex_type).embedding(attr)
        if (
            embedding.dimension != store.embedding.dimension
            or embedding.metric != store.embedding.metric
        ):
            raise VectorSearchError(
                f"attached store for {vertex_type}.{attr} has dim/metric "
                f"({store.embedding.dimension}, {store.embedding.metric.value}) but the "
                f"schema declares ({embedding.dimension}, {embedding.metric.value})"
            )
        with self._lock:
            self._stores[(vertex_type, attr)] = store

    # ------------------------------------------------------------ the hook
    def on_commit(self, tid: int, embedding_ops: list[tuple]) -> None:
        """GraphStore commit hook: turn embedding ops into delta records.

        Runs inside the commit critical section with the transaction's TID,
        which is exactly how TigerVector makes graph+vector updates atomic.
        """
        grouped: dict[tuple[str, str], list[DeltaRecord]] = {}
        for action, vertex_type, vid, attr, vector in embedding_ops:
            if action == "delete" and (vertex_type, attr) not in self._stores:
                # Cascade deletes for attributes never populated: skip quietly.
                try:
                    self.schema.vertex_type(vertex_type).embedding(attr)
                except UnknownTypeError:
                    continue
            record = DeltaRecord(
                action=UPSERT if action == "upsert" else DELETE,
                vid=vid,
                tid=tid,
                vector=None if vector is None else np.asarray(vector, dtype=np.float32),
            )
            grouped.setdefault((vertex_type, attr), []).append(record)
        for (vertex_type, attr), records in grouped.items():
            self.store(vertex_type, attr).append_deltas(records)
