"""MVCC vector deltas (paper Sec. 4.3).

Committed vector updates accumulate as *vector deltas* in an in-memory delta
store before the vacuum folds them into index snapshots.  The delta schema
matches the paper exactly: **Action Flag** (Upsert/Delete), **ID**, **TID**,
and **Vector Value**.

Two consumers read deltas:

- the *delta merge* vacuum process flushes them into immutable
  :class:`DeltaFile` objects (optionally persisted to disk), and
- query execution overlays unmerged deltas on top of index-snapshot results
  (brute force over the delta vectors).
"""

from __future__ import annotations

import bisect
import pickle
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator

import numpy as np

from ..errors import ReproError

__all__ = ["DeltaFile", "DeltaRecord", "DeltaStore"]

UPSERT = "upsert"
DELETE = "delete"


@dataclass(frozen=True)
class DeltaRecord:
    """One committed vector mutation: (action, id, tid, value)."""

    action: str  # UPSERT or DELETE
    vid: int  # global vertex id (segment = vid // segment_size)
    tid: int
    vector: np.ndarray | None  # None for deletes

    def __post_init__(self) -> None:
        if self.action not in (UPSERT, DELETE):
            raise ReproError(f"invalid delta action '{self.action}'")
        if self.action == UPSERT and self.vector is None:
            raise ReproError("upsert delta requires a vector value")


class DeltaFile:
    """An immutable batch of deltas covering TIDs in ``(from_tid, to_tid]``.

    The delta merge process produces these; the index merge process consumes
    them.  ``path`` is set when the file has been spilled to disk.
    """

    def __init__(self, records: list[DeltaRecord], from_tid: int, to_tid: int):
        self.records = list(records)
        self.from_tid = from_tid
        self.to_tid = to_tid
        self.path: Path | None = None

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[DeltaRecord]:
        return iter(self.records)

    def save(self, path) -> None:
        """Spill to disk (one pickle per file, like the paper's delta files)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = [
            (r.action, r.vid, r.tid, None if r.vector is None else np.asarray(r.vector))
            for r in self.records
        ]
        with open(path, "wb") as fh:
            pickle.dump(
                {"from_tid": self.from_tid, "to_tid": self.to_tid, "records": payload}, fh
            )
        self.path = path

    @classmethod
    def load(cls, path) -> "DeltaFile":
        with open(path, "rb") as fh:
            payload = pickle.load(fh)
        records = [
            DeltaRecord(action, vid, tid, vector)
            for action, vid, tid, vector in payload["records"]
        ]
        out = cls(records, payload["from_tid"], payload["to_tid"])
        out.path = Path(path)
        return out


class DeltaStore:
    """The in-memory delta store for one embedding attribute.

    Thread-safe append; records are kept in TID order.  ``cut(up_to_tid)``
    detaches a prefix into a :class:`DeltaFile` (the delta-merge step);
    ``records_between`` serves query-time overlays.
    """

    def __init__(self):
        self._records: list[DeltaRecord] = []
        self._tids: list[int] = []
        self._lock = threading.Lock()
        self._flushed_tid = 0  # everything <= this has been cut to a file

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        del state["_lock"]  # locks are not picklable; recreate on load
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    def append(self, records: Iterable[DeltaRecord]) -> None:
        with self._lock:
            for record in records:
                if self._tids and record.tid < self._tids[-1]:
                    raise ReproError("delta records must arrive in TID order")
                self._records.append(record)
                self._tids.append(record.tid)

    def __len__(self) -> int:
        return len(self._records)

    @property
    def flushed_tid(self) -> int:
        return self._flushed_tid

    @property
    def max_tid(self) -> int:
        with self._lock:
            return self._tids[-1] if self._tids else 0

    def records_between(self, low_tid: int, high_tid: int) -> list[DeltaRecord]:
        """Records with ``low_tid < tid <= high_tid`` (query-time overlay)."""
        with self._lock:
            start = bisect.bisect_right(self._tids, low_tid)
            stop = bisect.bisect_right(self._tids, high_tid)
            return self._records[start:stop]

    def cut(self, up_to_tid: int) -> DeltaFile | None:
        """Detach records with ``flushed_tid < tid <= up_to_tid`` into a file.

        Returns ``None`` when there is nothing new to flush.  The cut prefix
        is removed from the in-memory store; the paper notes this step is
        fast (memory -> file) compared to the index merge.
        """
        with self._lock:
            if up_to_tid <= self._flushed_tid:
                return None
            stop = bisect.bisect_right(self._tids, up_to_tid)
            if stop == 0:
                self._flushed_tid = up_to_tid
                return None
            records = self._records[:stop]
            self._records = self._records[stop:]
            self._tids = self._tids[stop:]
            from_tid = self._flushed_tid
            self._flushed_tid = up_to_tid
            return DeltaFile(records, from_tid, up_to_tid)

    def prepare_cut(self, up_to_tid: int) -> DeltaFile | None:
        """Phase one of a two-phase cut: capture the prefix, retire nothing.

        :meth:`cut` removes records before the caller can publish the
        returned file, so a concurrent overlay read lands in a window where
        the records are in *neither* the delta store nor the file list
        (found by ``repro.analysis.explore``, vacuum-vs-search scenario).
        ``prepare_cut`` only copies the prefix; the caller publishes the
        file, then calls :meth:`commit_cut` to retire it.  In between, the
        records are visible twice — benign, because overlays apply
        last-write-wins per vid and both copies are identical.
        """
        with self._lock:
            if up_to_tid <= self._flushed_tid:
                return None
            stop = bisect.bisect_right(self._tids, up_to_tid)
            if stop == 0:
                self._flushed_tid = up_to_tid
                return None
            return DeltaFile(list(self._records[:stop]), self._flushed_tid, up_to_tid)

    def commit_cut(self, dfile: DeltaFile) -> None:
        """Phase two: retire the prefix captured by :meth:`prepare_cut`."""
        with self._lock:
            stop = bisect.bisect_right(self._tids, dfile.to_tid)
            self._records = self._records[stop:]
            self._tids = self._tids[stop:]
            self._flushed_tid = dfile.to_tid
