"""Embedding attribute type and embedding space (paper Sec. 4.1).

TigerVector manages vectors through a dedicated ``embedding`` data type
rather than ``LIST<FLOAT>``.  The type carries the metadata that the engine
needs to validate and plan vector operations:

- ``dimension`` — vector dimensionality,
- ``model`` — the ML model that produced the embedding (free-form string),
- ``index`` — the vector index algorithm (HNSW or FLAT),
- ``datatype`` — element type (FLOAT / DOUBLE),
- ``metric`` — similarity metric (L2 / IP / COSINE).

An :class:`EmbeddingSpace` names one such metadata bundle so that several
vertex types can share a single definition (Figure 2 in the paper).

Compatibility (static analysis)
-------------------------------
Multi-attribute vector search (``VectorSearch({Post.emb, Comment.emb}, ...)``)
is only allowed when the attributes are *compatible*: every metadata field
except the index type must be identical.  :func:`check_compatible` implements
that check and raises :class:`~repro.errors.EmbeddingCompatibilityError`
otherwise; the GSQL semantic analyzer calls it at compile time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

import numpy as np

from ..errors import DimensionMismatchError, EmbeddingCompatibilityError, SchemaError
from ..types import DataType, IndexType, Metric

__all__ = [
    "DEFAULT_HNSW_PARAMS",
    "EmbeddingSpace",
    "EmbeddingType",
    "check_compatible",
]

#: Default HNSW construction parameters (M=16, efConstruction=128), matching
#: the configuration the paper uses across all compared systems (Sec. 6.1).
DEFAULT_HNSW_PARAMS: Mapping[str, int] = {"M": 16, "ef_construction": 128}


@dataclass(frozen=True)
class EmbeddingType:
    """Metadata describing one embedding attribute on a vertex type.

    Instances are immutable; the catalog hands out shared references.
    """

    name: str
    dimension: int
    model: str = "unknown"
    index: IndexType = IndexType.HNSW
    datatype: DataType = DataType.FLOAT
    metric: Metric = Metric.COSINE
    index_params: Mapping[str, int] = field(default_factory=lambda: dict(DEFAULT_HNSW_PARAMS))
    space: str | None = None  # name of the embedding space it was created from

    def __post_init__(self) -> None:
        if self.dimension <= 0:
            raise SchemaError(f"embedding '{self.name}': dimension must be positive")
        if not self.name:
            raise SchemaError("embedding attribute name must be non-empty")

    def validate_vector(self, vector: np.ndarray) -> np.ndarray:
        """Coerce ``vector`` to this type's dtype, checking dimensionality."""
        arr = np.asarray(vector, dtype=self.datatype.numpy_dtype).reshape(-1)
        if arr.shape[0] != self.dimension:
            raise DimensionMismatchError(
                f"embedding '{self.name}' expects dimension {self.dimension}, "
                f"got {arr.shape[0]}"
            )
        return arr

    def is_compatible_with(self, other: "EmbeddingType") -> bool:
        """True when a single search may span both attributes.

        Per Sec. 4.1: *"If all aspects of the vector metadata, except for the
        index type, are identical, the query is allowed."*
        """
        return (
            self.dimension == other.dimension
            and self.model == other.model
            and self.datatype == other.datatype
            and self.metric == other.metric
        )


@dataclass(frozen=True)
class EmbeddingSpace:
    """A named, reusable embedding metadata bundle (``CREATE EMBEDDING SPACE``)."""

    name: str
    dimension: int
    model: str = "unknown"
    index: IndexType = IndexType.HNSW
    datatype: DataType = DataType.FLOAT
    metric: Metric = Metric.COSINE
    index_params: Mapping[str, int] = field(default_factory=lambda: dict(DEFAULT_HNSW_PARAMS))

    def make_attribute(self, attr_name: str) -> EmbeddingType:
        """Instantiate an embedding attribute belonging to this space."""
        return EmbeddingType(
            name=attr_name,
            dimension=self.dimension,
            model=self.model,
            index=self.index,
            datatype=self.datatype,
            metric=self.metric,
            index_params=dict(self.index_params),
            space=self.name,
        )


def check_compatible(attrs: Iterable[tuple[str, EmbeddingType]]) -> EmbeddingType:
    """Validate that all ``(qualified_name, embedding_type)`` pairs may be searched together.

    Returns the first embedding type (the representative for planning
    purposes) or raises :class:`EmbeddingCompatibilityError` naming the
    offending pair.  This is the compile-time static analysis from Sec. 4.1.
    """
    pairs = list(attrs)
    if not pairs:
        raise EmbeddingCompatibilityError("vector search requires at least one embedding attribute")
    first_name, first = pairs[0]
    for name, etype in pairs[1:]:
        if not first.is_compatible_with(etype):
            raise EmbeddingCompatibilityError(
                f"embedding attributes '{first_name}' and '{name}' are not "
                f"compatible: ({first.dimension}d, {first.model}, "
                f"{first.datatype.value}, {first.metric.value}) vs "
                f"({etype.dimension}d, {etype.model}, {etype.datatype.value}, "
                f"{etype.metric.value})"
            )
    return first
