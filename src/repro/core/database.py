"""TigerVectorDB: the top-level facade.

One object wiring together everything the paper describes: the graph store
(segments, MVCC, WAL), the embedding service (decoupled vector storage), the
two-stage vacuum, MPP execution, pattern matching, the VectorSearch()
function, and the GSQL compiler.

Typical use::

    db = TigerVectorDB()
    db.schema.create_vertex_type("Post", [Attribute("id", AttrType.INT, primary_key=True),
                                          Attribute("lang", AttrType.STRING)])
    db.schema.add_embedding_attribute("Post", "content_emb", dimension=128,
                                      model="GPT4", metric=Metric.L2)
    with db.begin() as txn:
        txn.upsert_vertex("Post", 1, {"lang": "en"})
        txn.set_embedding("Post", 1, "content_emb", vec)
    db.vacuum()                      # fold deltas into index snapshots
    top = db.vector_search(["Post.content_emb"], query, k=10)
"""

from __future__ import annotations

import os
import threading
from typing import Any, Iterable, Sequence

import numpy as np

from ..graph.mpp import MPPExecutor
from ..graph.schema import GraphSchema
from ..graph.storage import GraphStore
from ..graph.txn import Snapshot, Transaction
from ..graph.vertex_set import VertexSet
from .search import (
    VectorSearchOptions,
    build_topk_vertex_set,
    vector_search,
    vector_search_batch,
)
from .service import EmbeddingService
from .vacuum import VacuumManager

__all__ = ["TigerVectorDB"]


class TigerVectorDB:
    """A single-process TigerVector instance (graph + vectors + GSQL)."""

    def __init__(
        self,
        schema: GraphSchema | None = None,
        segment_size: int = 4096,
        wal_path: str | os.PathLike | None = None,
        spill_dir: str | os.PathLike | None = None,
        max_workers: int | None = None,
        bf_threshold: int | None = None,
    ):
        self.schema = schema or GraphSchema()
        self.store = GraphStore(self.schema, segment_size=segment_size, wal_path=wal_path)
        self.service = EmbeddingService(
            self.schema, segment_size=segment_size, bf_threshold=bf_threshold
        )
        self.store.register_embedding_hook(self.service.on_commit)
        self.vacuum_manager = VacuumManager(self.store, self.service, spill_dir=spill_dir)
        self.executor = MPPExecutor(max_workers=max_workers)
        #: Optional repro.tier.TierManager; see :meth:`enable_tiering`.
        self.tier_manager = None
        self._gsql_session = None
        # Guards the lazy gsql/access singletons: serve workers hit both
        # properties concurrently, and an unguarded check-then-create would
        # let two threads race to construct (one session wins, the other's
        # installed state is silently lost).
        self._lazy_lock = threading.Lock()

    # ------------------------------------------------------------- recovery
    @classmethod
    def recover(
        cls,
        schema: GraphSchema,
        wal_path: str | os.PathLike,
        segment_size: int = 4096,
        **kwargs,
    ) -> "TigerVectorDB":
        """Rebuild a database by replaying its write-ahead log.

        Graph state, vector deltas, and the pk index are all reconstructed;
        the embedding service's commit hook is registered *before* replay so
        vector upserts land in the delta stores with their original TIDs.
        Run :meth:`vacuum` afterwards to rebuild index snapshots.
        """
        db = cls.__new__(cls)
        db.schema = schema
        db.service = EmbeddingService(schema, segment_size=segment_size)
        db.store = GraphStore.recover(
            schema, wal_path, segment_size=segment_size,
            embedding_hook=db.service.on_commit,  # stays registered afterwards
        )
        db.vacuum_manager = VacuumManager(db.store, db.service)
        db.executor = MPPExecutor(max_workers=kwargs.get("max_workers"))
        db.tier_manager = None
        db._gsql_session = None
        db._lazy_lock = threading.Lock()
        return db

    # --------------------------------------------------------- transactions
    def begin(self) -> Transaction:
        return self.store.begin()

    def snapshot(self) -> Snapshot:
        return self.store.snapshot()

    def session_token(self) -> int:
        """Latest published commit TID (read-your-writes token; see serve)."""
        return self.store.session_token()

    def vacuum(self, num_threads: int | None = None) -> dict:
        """Run one synchronous vacuum round (delta merge + index merge + graph)."""
        return self.vacuum_manager.run_once(num_threads=num_threads)

    # -------------------------------------------------------------- tiering
    def enable_tiering(
        self,
        budget_bytes: int,
        spill_dir: str | os.PathLike | None = None,
        pq=None,
        ewma_alpha: float = 0.3,
    ):
        """Turn on memory-budgeted hot/cold segment management (DESIGN §12).

        Installs a :class:`repro.tier.TierManager` over the embedding
        service and hooks tier rebalancing into the vacuum boundary.  Off
        by default; until called, every search path is byte-identical to a
        database without tiering.
        """
        from ..tier import TierManager

        manager = TierManager(
            self.service,
            budget_bytes,
            spill_dir=spill_dir,
            pq=pq,
            ewma_alpha=ewma_alpha,
        )
        self.tier_manager = manager
        self.vacuum_manager.tier_manager = manager
        return manager

    # -------------------------------------------------------------- loading
    def bulk_load_vertices(
        self,
        vertex_type: str,
        rows: Iterable[dict[str, Any]],
        batch_size: int = 10_000,
    ) -> int:
        """Insert many vertices in large transactions; returns count."""
        vtype = self.schema.vertex_type(vertex_type)
        pk = vtype.primary_key
        count = 0
        txn = self.begin()
        for row in rows:
            txn.upsert_vertex(vertex_type, row[pk], row)
            count += 1
            if count % batch_size == 0:
                txn.commit()
                txn = self.begin()
        if txn.pending_ops:
            txn.commit()
        return count

    def bulk_load_edges(
        self,
        edge_type: str,
        pairs: Iterable[tuple[Any, Any]],
        batch_size: int = 20_000,
    ) -> int:
        count = 0
        txn = self.begin()
        for from_pk, to_pk in pairs:
            txn.add_edge(edge_type, from_pk, to_pk)
            count += 1
            if count % batch_size == 0:
                txn.commit()
                txn = self.begin()
        if txn.pending_ops:
            txn.commit()
        return count

    def bulk_load_embeddings(
        self,
        vertex_type: str,
        attr: str,
        pks: Sequence[Any],
        vectors: np.ndarray,
        num_threads: int = 1,
    ) -> int:
        """Fast-path embedding load: vids resolved, segments built directly.

        This is the optimized loading path behind Table 2's short data-load
        times; it bypasses the per-record delta store (appropriate for
        initial ingest, which needs no MVCC history).
        """
        vectors = np.asarray(vectors, dtype=np.float32)
        embedding = self.schema.vertex_type(vertex_type).embedding(attr)
        if vectors.shape[1] != embedding.dimension:
            raise ValueError(
                f"vectors have dimension {vectors.shape[1]}, embedding expects "
                f"{embedding.dimension}"
            )
        vids = []
        for pk in pks:
            vid = self.store.vid_for_pk(vertex_type, pk)
            if vid is None:
                raise KeyError(f"vertex {vertex_type}({pk!r}) does not exist")
            vids.append(vid)
        store = self.service.store(vertex_type, attr)
        store.bulk_load(
            np.asarray(vids, dtype=np.int64),
            vectors,
            tid=self.store.last_tid,
            num_threads=num_threads,
        )
        return len(vids)

    # --------------------------------------------------------------- search
    def vector_search(
        self,
        vector_attributes: list[str],
        query_vector: np.ndarray,
        k: int,
        filter: VertexSet | None = None,
        distance_map=None,
        ef: int | None = None,
        snapshot: Snapshot | None = None,
    ) -> VertexSet:
        """The VectorSearch() function (Sec. 5.5) on the current snapshot."""
        options = VectorSearchOptions(filter=filter, distance_map=distance_map, ef=ef)
        if snapshot is not None:
            return vector_search(
                self.service, snapshot, vector_attributes, query_vector, k, options
            )
        with self.snapshot() as snap:
            return vector_search(
                self.service, snap, vector_attributes, query_vector, k, options
            )

    def vector_search_batch(
        self,
        vector_attributes: list[str],
        query_vectors: np.ndarray,
        k: int,
        ef: int | None = None,
        snapshot: Snapshot | None = None,
        min_fused: int = 4,
    ) -> list[VertexSet]:
        """Fused multi-query VectorSearch: one segment pass for all queries.

        The kernel behind ``repro.serve``'s micro-batcher, exposed for
        direct use.  All queries run against one MVCC snapshot; returns one
        :class:`VertexSet` per query row.
        """
        if snapshot is not None:
            batches = vector_search_batch(
                self.service, snapshot, vector_attributes, query_vectors, k,
                ef=ef, min_fused=min_fused,
            )
        else:
            with self.snapshot() as snap:
                batches = vector_search_batch(
                    self.service, snap, vector_attributes, query_vectors, k,
                    ef=ef, min_fused=min_fused,
                )
        return [build_topk_vertex_set(top, None) for top in batches]

    # ------------------------------------------------------------------ RBAC
    @property
    def access(self):
        """Role-based access control (unified graph+vector governance)."""
        if getattr(self, "_access", None) is None:
            with self._lazy_lock:
                if getattr(self, "_access", None) is None:
                    from .auth import AccessController

                    self._access = AccessController(self)
        return self._access

    # ----------------------------------------------------------------- GSQL
    @property
    def gsql(self):
        """The GSQL session: ``db.gsql.run("SELECT s FROM (s:Post) ...")``.

        One shared session per database; concurrent ``run()`` calls are
        supported for query execution (see :class:`~repro.gsql.session.
        GSQLSession` for the exact contract).
        """
        if self._gsql_session is None:
            with self._lazy_lock:
                if self._gsql_session is None:
                    from ..gsql.session import GSQLSession

                    self._gsql_session = GSQLSession(self)
        return self._gsql_session

    def run_gsql(self, text: str, **params):
        """Compile and execute GSQL source (DDL, query blocks, or procedures)."""
        return self.gsql.run(text, **params)

    # ------------------------------------------------------------- plumbing
    def pk_for(self, vertex_type: str, vid: int):
        return self.store.pk_for_vid(vertex_type, vid)

    def vid_for(self, vertex_type: str, pk) -> int | None:
        return self.store.vid_for_pk(vertex_type, pk)

    def close(self) -> None:
        self.vacuum_manager.stop()
        self.executor.shutdown()
        self.store.wal.close()

    def __enter__(self) -> "TigerVectorDB":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
