"""Role-based access control over graph and vector data (paper Sec. 1, 5.1).

One of the paper's arguments for a *unified* system is data governance: "a
single set of access controls (e.g., role-based access control) for both
vector data and graph data".  And the vector-search filter bitmap
explicitly marks "all deleted and **unauthorized** vectors as invalid"
(Sec. 5.1).  This module provides that layer:

- a :class:`Role` grants access per vertex type — everything, nothing, or a
  row predicate (``lambda attrs: ...``);
- an :class:`AccessController` registers roles and materializes
  *authorization bitmaps* (one per segment) that the vector search
  intersects with its validity masks, so unauthorized vectors can never
  surface in results — the same mechanism that hides deleted rows;
- :meth:`AccessController.authorized_search` is the drop-in authorized
  variant of ``VectorSearch()``.

Because both the graph side (scan filtering) and the vector side (bitmap
intersection) derive from one rule set, authorization cannot diverge
between the two — exactly the unified-governance claim.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping

import numpy as np

from ..errors import ReproError
from ..graph.txn import Snapshot
from ..graph.vertex_set import VertexSet
from ..index.bitmap import Bitmap

__all__ = ["AccessController", "AuthorizationError", "Role"]

#: Row predicate deciding visibility of one vertex for a role.
RowPredicate = Callable[[dict[str, Any]], bool]


class AuthorizationError(ReproError):
    """The role does not permit the attempted access."""


class Role:
    """A named set of per-vertex-type access rules.

    ``rules`` maps vertex type -> ``True`` (full access), ``False`` (no
    access), or a row predicate.  Types absent from the map fall back to
    ``default`` (deny, unless constructed with ``default_allow=True``).
    """

    def __init__(
        self,
        name: str,
        rules: Mapping[str, bool | RowPredicate] | None = None,
        default_allow: bool = False,
    ):
        self.name = name
        self.rules: dict[str, bool | RowPredicate] = dict(rules or {})
        self.default_allow = default_allow

    def can_access_type(self, vertex_type: str) -> bool:
        rule = self.rules.get(vertex_type, self.default_allow)
        return rule is not False

    def allows(self, vertex_type: str, row: dict[str, Any]) -> bool:
        rule = self.rules.get(vertex_type, self.default_allow)
        if rule is True:
            return True
        if rule is False:
            return False
        return bool(rule(row))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Role({self.name!r}, types={sorted(self.rules)})"


class AccessController:
    """Registry of roles + the authorization-bitmap machinery."""

    def __init__(self, db):
        self.db = db
        self._roles: dict[str, Role] = {}
        # Admin sees everything; always present.
        self._roles["admin"] = Role("admin", default_allow=True)

    # ------------------------------------------------------------- registry
    def create_role(
        self,
        name: str,
        rules: Mapping[str, bool | RowPredicate] | None = None,
        default_allow: bool = False,
    ) -> Role:
        if name in self._roles:
            raise ReproError(f"role '{name}' already exists")
        role = Role(name, rules, default_allow)
        self._roles[name] = role
        return role

    def role(self, name: str) -> Role:
        try:
            return self._roles[name]
        except KeyError:
            raise AuthorizationError(f"unknown role '{name}'") from None

    # -------------------------------------------------------------- bitmaps
    def authorization_bitmaps(
        self, role: Role | str, snapshot: Snapshot, vertex_type: str
    ) -> list[Bitmap]:
        """Per-segment masks of the vertices this role may see.

        This is the "unauthorized vectors are invalid" bitmap of Sec. 5.1;
        the caller intersects it with any query filter before the vector
        search, so one index call returns only authorized results.
        """
        if isinstance(role, str):
            role = self.role(role)
        capacity = snapshot._store.segment_size
        num_segments = snapshot.num_segments(vertex_type)
        if not role.can_access_type(vertex_type):
            return [Bitmap.empty(capacity) for _ in range(num_segments)]
        rule = role.rules.get(vertex_type, role.default_allow)
        if rule is True:
            # Full access: wrap the existing status structure, no new bitmap
            # (the Sec. 5.1 reuse optimization applies to authorization too).
            return [Bitmap.wrap(mask) for mask in snapshot.valid_bitmaps(vertex_type)]
        masks = [np.zeros(capacity, dtype=bool) for _ in range(num_segments)]
        for vid, row in snapshot.scan(vertex_type):
            if role.allows(vertex_type, row):
                masks[vid // capacity][vid % capacity] = True
        return [Bitmap.wrap(mask) for mask in masks]

    # ------------------------------------------------------------ filtering
    def visible_vertices(
        self, role: Role | str, snapshot: Snapshot, vertex_type: str
    ) -> VertexSet:
        """Graph-side view under the same rules (unified governance)."""
        if isinstance(role, str):
            role = self.role(role)
        out = VertexSet(name=f"visible:{vertex_type}")
        if not role.can_access_type(vertex_type):
            return out
        for vid, row in snapshot.scan(vertex_type):
            if role.allows(vertex_type, row):
                out.add(vertex_type, vid)
        return out

    # -------------------------------------------------------------- search
    def authorized_search(
        self,
        role: Role | str,
        vector_attributes: list[str],
        query_vector,
        k: int,
        filter: VertexSet | None = None,
        ef: int | None = None,
    ) -> VertexSet:
        """VectorSearch() that can only return authorized vertices.

        The role's authorization bitmap intersects the query's own filter
        (if any); types the role cannot read are skipped entirely.
        """
        from .action import EmbeddingAction
        from .embedding import check_compatible
        from ..errors import VectorSearchError

        if isinstance(role, str):
            role = self.role(role)
        if k <= 0:
            raise VectorSearchError("k must be positive")
        schema = self.db.schema
        resolved = []
        for qualified in vector_attributes:
            vertex_type, embedding = schema.embedding_attribute(qualified)
            resolved.append((qualified, vertex_type, embedding))
        check_compatible([(q, e) for q, _, e in resolved])
        query = np.asarray(query_vector, dtype=np.float32).reshape(-1)

        merged: list[tuple[float, str, int]] = []
        with self.db.snapshot() as snapshot:
            for qualified, vertex_type, _ in resolved:
                if not role.can_access_type(vertex_type):
                    continue
                auth = self.authorization_bitmaps(role, snapshot, vertex_type)
                if filter is not None:
                    vids = filter.vids_of_type(vertex_type)
                    user = [
                        Bitmap.wrap(m)
                        for m in snapshot.bitmap_from_vids(vertex_type, vids)
                    ]
                    while len(user) < len(auth):
                        user.append(Bitmap.empty(snapshot._store.segment_size))
                    bitmaps = [a.intersect(u) for a, u in zip(auth, user)]
                else:
                    bitmaps = auth
                store = self.db.service.store(
                    vertex_type, qualified.split(".", 1)[1]
                )
                while len(bitmaps) < store.num_segments:
                    bitmaps.append(Bitmap.empty(store.segment_size))
                action = EmbeddingAction(store)
                result = action.topk(
                    query, k, snapshot_tid=snapshot.tid, ef=ef, bitmaps=bitmaps
                )
                merged.extend(
                    (float(d), vertex_type, int(v)) for v, d in result
                )
        merged.sort(key=lambda e: e[0])
        out = VertexSet(name=f"TopK[{role.name}]")
        for _, vertex_type, vid in merged[:k]:
            out.add(vertex_type, vid)
        return out
