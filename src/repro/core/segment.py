"""Embedding segments: decoupled vector storage (paper Sec. 4.2).

Vectors belonging to one vertex segment are stored together in an
*embedding segment*, separate from the vertex segment's other attributes,
keeping the same local ids (offsets).  Each embedding segment owns its own
vector index, capping index size at the vertex-segment capacity and making
the segment the unit of parallel search, distribution, update, and recovery.

An :class:`EmbeddingSegment` holds two MVCC-versioned pieces:

- the raw vector array (``vectors`` + ``present`` mask) — the on-disk
  embedding segment in the paper; used for brute-force scans, similarity
  joins, and GetEmbedding;
- the index *snapshot* — an HNSW graph valid as of ``snapshot_tid``.

Both advance together when the index-merge vacuum installs a new snapshot
(:meth:`install_snapshot`).  Reads older than the current snapshot are served
by retained previous snapshots (``retired`` list) until the vacuum confirms
no live transaction needs them.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

import numpy as np

from ..errors import ReproError, VectorSearchError
from ..index.interface import VectorIndex, create_index
from ..index.kernels import DistanceKernel
from ..types import Metric
from .delta import DELETE, UPSERT, DeltaRecord
from .embedding import EmbeddingType

__all__ = ["EmbeddingSegment", "SegmentSnapshot", "rebuild_index"]


@dataclass
class SegmentSnapshot:
    """One immutable (index, raw-vectors) pair valid as of ``tid``.

    Tiered storage (DESIGN §12) adds a second shape: a **cold** snapshot
    carries PQ codes (``pq``) instead of an index (``index is None``), and
    its ``vectors`` may be a read-only ``np.memmap`` spilled to disk.  Hot
    and cold snapshots move through exactly the same MVCC machinery — a
    tier transition is just ``install_snapshot`` of a same-``tid`` twin, so
    pinned readers keep the retired variant until GC proves it unreachable.
    """

    tid: int
    index: VectorIndex | None
    vectors: np.ndarray  # (capacity, dim), rows valid where present
    present: np.ndarray  # (capacity,) bool
    _kernel: DistanceKernel | None = None  # lazy scan kernel; never pickled
    tier: str = "hot"  # "hot" | "cold"
    pq: object | None = None  # PQCodes on cold snapshots

    def kernel(self, metric: Metric) -> DistanceKernel:
        """Distance kernel over this snapshot's raw vectors, built lazily.

        Snapshots are immutable once installed, so the augmented-row cache
        is computed once and shared by every brute-force/overlay scan that
        reads this snapshot.  (``bulk_load`` — the offline ingest path that
        mutates the current snapshot in place — drops the cache.)  Benign
        race under concurrent first calls: both build, one wins the write.

        Refused on cold snapshots: building the augmented-row cache would
        materialize every (possibly memmapped) row, defeating the tier.
        Cold reads go through the ADC kernel plus candidate-only rerank in
        :meth:`EmbeddingStore.search_segment` instead.
        """
        if self.tier != "hot":
            raise ReproError("scan kernel unavailable on a cold snapshot")
        kernel = self._kernel
        if kernel is None or kernel.metric is not metric:
            kernel = DistanceKernel.for_matrix(self.vectors, metric)
            self._kernel = kernel
        return kernel

    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        state["_kernel"] = None  # derived cache: rebuild on load, halve snapshots
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)


class EmbeddingSegment:
    """One embedding attribute's vectors for one vertex segment."""

    def __init__(self, embedding: EmbeddingType, seg_no: int, capacity: int):
        self.embedding = embedding
        self.seg_no = seg_no
        self.capacity = capacity
        index = create_index(
            embedding.index, embedding.dimension, embedding.metric, dict(embedding.index_params)
        )
        self._current = SegmentSnapshot(
            tid=0,
            index=index,
            vectors=np.zeros((capacity, embedding.dimension), dtype=np.float32),
            present=np.zeros(capacity, dtype=bool),
        )
        self._retired: list[SegmentSnapshot] = []
        self._lock = threading.Lock()

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        del state["_lock"]  # locks are not picklable; recreate on load
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    # ----------------------------------------------------------- snapshots
    @property
    def snapshot_tid(self) -> int:
        return self._current.tid

    def snapshot_for(self, snapshot_tid: int) -> SegmentSnapshot:
        """Newest snapshot with ``tid <= snapshot_tid``.

        Deltas newer than the returned snapshot must be overlaid by the
        caller (see :meth:`EmbeddingStore.search_segment`).
        """
        with self._lock:
            if self._current.tid <= snapshot_tid:
                return self._current
            best = None
            for snap in self._retired:
                if snap.tid <= snapshot_tid and (best is None or snap.tid > best.tid):
                    best = snap
            if best is None:
                # All retained snapshots are newer than the reader: the
                # reader predates this segment's first vector, so an empty
                # view is correct.
                oldest = min(self._retired, key=lambda s: s.tid, default=self._current)
                if snapshot_tid < oldest.tid:
                    return _empty_like(self, 0)
                best = oldest
            return best

    def current_snapshot(self) -> SegmentSnapshot:
        """The newest snapshot (what an up-to-date reader would pin)."""
        with self._lock:
            return self._current

    def install_snapshot(self, snapshot: SegmentSnapshot) -> None:
        """Atomically switch to a newer snapshot, retiring the current one.

        Same-``tid`` installs are allowed: tier transitions publish a hot or
        cold twin of the current snapshot without inventing a new version.
        """
        with self._lock:
            if snapshot.tid < self._current.tid:
                raise ReproError("cannot install an older snapshot")
            self._retired.append(self._current)
            self._current = snapshot

    def gc_snapshots(self, min_active_snapshot_tid: int) -> int:
        """Drop retired snapshots no live transaction can still read.

        Mirrors the paper: *"The old index snapshot and delta files are
        deleted only after the new index snapshot is visible to all running
        transactions."*
        """
        with self._lock:
            survivors = []
            dropped = 0
            for snap in self._retired:
                # A retired snapshot is needed only if some reader's TID is
                # older than the snapshot that superseded it.  Conservative
                # rule: keep while min reader < current snapshot tid.
                if min_active_snapshot_tid < self._current.tid and snap.tid <= min_active_snapshot_tid:
                    survivors.append(snap)
                elif min_active_snapshot_tid < snap.tid:
                    survivors.append(snap)
                else:
                    dropped += 1
            self._retired = survivors
            return dropped

    # ------------------------------------------------------- direct access
    @property
    def index(self) -> VectorIndex:
        return self._current.index

    @property
    def vectors(self) -> np.ndarray:
        return self._current.vectors

    @property
    def present(self) -> np.ndarray:
        return self._current.present

    def live_count(self) -> int:
        return int(np.count_nonzero(self._current.present))

    def get_vector(self, offset: int, snapshot_tid: int | None = None) -> np.ndarray | None:
        snap = self._current if snapshot_tid is None else self.snapshot_for(snapshot_tid)
        if 0 <= offset < self.capacity and snap.present[offset]:
            return snap.vectors[offset].copy()
        return None

    # ---------------------------------------------------------- bulk build
    def bulk_load(self, offsets: np.ndarray, vectors: np.ndarray, tid: int, num_threads: int = 1) -> None:
        """Initial-load fast path: build the snapshot directly, no deltas.

        This is the optimized loading-tool path the paper credits for
        TigerVector's short data-load times (Table 2).
        """
        offsets = np.asarray(offsets, dtype=np.int64)
        vectors = np.asarray(vectors, dtype=np.float32)
        if offsets.size != vectors.shape[0]:
            raise VectorSearchError("offsets and vectors length mismatch")
        if np.any((offsets < 0) | (offsets >= self.capacity)):
            raise VectorSearchError("offset outside segment capacity")
        snap = self._current
        snap.vectors[offsets] = vectors
        snap.present[offsets] = True
        snap._kernel = None  # in-place mutation invalidates the scan kernel
        snap.index.update_items(offsets.tolist(), vectors, num_threads=num_threads)
        snap.tid = max(snap.tid, tid)

    # ----------------------------------------------------- snapshot builds
    def build_next_snapshot(
        self,
        records: list[DeltaRecord],
        new_tid: int,
        segment_size: int,
        num_threads: int = 1,
    ) -> SegmentSnapshot:
        """Apply delta records for this segment to a copy of the snapshot.

        This is the index-merge step: the current snapshot is cloned, the
        deltas are folded in with ``update_items`` / ``delete_items``, and
        the result is returned for :meth:`install_snapshot` to switch to.
        """
        with self._lock:  # pin one coherent snapshot to clone from
            current = self._current
        # A cold current is re-hydrated here: materialize the (possibly
        # memmapped) rows and rebuild the index from present rows.  The
        # merged segment is published hot; the tier manager re-demotes it
        # at the rebalance that follows the vacuum pass if it is still cold
        # by access heat.
        vectors = np.array(current.vectors, dtype=np.float32)
        present = current.present.copy()
        if current.index is None:
            index = rebuild_index(self.embedding, vectors, present, num_threads)
        else:
            index = _clone_index(current.index)
        upserts: dict[int, np.ndarray] = {}
        deletes: list[int] = []
        for record in records:
            offset = record.vid % segment_size
            if record.action == UPSERT:
                upserts[offset] = record.vector
                vectors[offset] = record.vector
                present[offset] = True
            elif record.action == DELETE:
                upserts.pop(offset, None)
                present[offset] = False
                deletes.append(offset)
        if upserts:
            offs = list(upserts)
            index.update_items(offs, np.stack([upserts[o] for o in offs]), num_threads=num_threads)
        if deletes:
            index.delete_items(deletes)
        return SegmentSnapshot(tid=new_tid, index=index, vectors=vectors, present=present)


def rebuild_index(
    embedding: EmbeddingType,
    vectors: np.ndarray,
    present: np.ndarray,
    num_threads: int = 1,
) -> VectorIndex:
    """Fresh per-segment index over the present rows (tier promotion path)."""
    index = create_index(
        embedding.index, embedding.dimension, embedding.metric, dict(embedding.index_params)
    )
    offsets = np.flatnonzero(present)
    if offsets.size:
        index.update_items(offsets.tolist(), vectors[offsets], num_threads=num_threads)
    return index


def _clone_index(index: VectorIndex) -> VectorIndex:
    """Deep-copy a vector index (pickle round-trip keeps it simple and safe)."""
    import pickle

    return pickle.loads(pickle.dumps(index))


def _empty_like(segment: EmbeddingSegment, tid: int) -> SegmentSnapshot:
    emb = segment.embedding
    return SegmentSnapshot(
        tid=tid,
        index=create_index(emb.index, emb.dimension, emb.metric, dict(emb.index_params)),
        vectors=np.zeros((segment.capacity, emb.dimension), dtype=np.float32),
        present=np.zeros(segment.capacity, dtype=bool),
    )
