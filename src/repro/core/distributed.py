"""Distributed vector search (paper Sec. 5.1, Figure 5).

Bridges the embedding store to the simulated cluster:

- :meth:`DistributedSearcher.search` executes a real distributed query —
  per-machine local top-k over that machine's segments, then a coordinator
  merge — and returns both the merged result and the measured per-segment
  service times.  Correctness is machine-count invariant (the merge of local
  top-k lists equals the single-machine answer), which tests verify.
- :meth:`DistributedSearcher.measure_samples` collects service-time samples
  for the load generator, which is how Figures 9–10 are produced.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..cluster.coordinator import ClusterSimulator
from ..cluster.machine import Machine, make_cluster
from ..cluster.network import NetworkModel
from ..index.interface import SearchResult
from .service import EmbeddingStore

__all__ = ["DistributedSearchOutput", "DistributedSearcher"]


@dataclass
class DistributedSearchOutput:
    result: SearchResult
    segment_seconds: dict[int, float]
    per_machine_seconds: dict[int, float]


class DistributedSearcher:
    """Executes segment searches placed across simulated machines."""

    def __init__(
        self,
        store: EmbeddingStore,
        num_machines: int,
        cores_per_machine: int = 32,
        network: NetworkModel | None = None,
    ):
        self.store = store
        self.machines: list[Machine] = make_cluster(
            num_machines, store.num_segments, cores=cores_per_machine
        )
        self.network = network or NetworkModel()

    def simulator(self, dim: int | None = None, k: int = 10) -> ClusterSimulator:
        return ClusterSimulator(
            self.machines,
            self.network,
            dim=dim or self.store.embedding.dimension,
            k=k,
        )

    # ------------------------------------------------------------ execution
    def search(
        self,
        query: np.ndarray,
        k: int,
        snapshot_tid: int,
        ef: int | None = None,
    ) -> DistributedSearchOutput:
        """Real distributed top-k: local searches + coordinator merge."""
        segment_seconds: dict[int, float] = {}
        per_machine: dict[int, float] = {}
        merged: list[tuple[float, int]] = []
        for machine in self.machines:
            machine_total = 0.0
            for seg_no in machine.segments:
                start = time.perf_counter()
                out = self.store.search_segment(seg_no, query, k, snapshot_tid, ef=ef)
                elapsed = time.perf_counter() - start
                segment_seconds[seg_no] = elapsed
                machine_total += elapsed
                base = seg_no * self.store.segment_size
                merged.extend(
                    zip(out.distances, (base + o for o in out.offsets))
                )
            per_machine[machine.machine_id] = machine_total
        merged.sort()
        merged = merged[:k]
        if merged:
            dists, vids = zip(*merged)
            result = SearchResult(np.asarray(vids), np.asarray(dists, dtype=np.float32))
        else:
            result = SearchResult.empty()
        return DistributedSearchOutput(result, segment_seconds, per_machine)

    def measure_samples(
        self,
        queries: np.ndarray,
        k: int,
        snapshot_tid: int,
        ef: int | None = None,
    ) -> tuple[list[dict[int, float]], list[SearchResult]]:
        """Measured per-query segment service times (load-generator input)."""
        samples: list[dict[int, float]] = []
        results: list[SearchResult] = []
        for query in np.asarray(queries, dtype=np.float32):
            output = self.search(query, k, snapshot_tid, ef=ef)
            samples.append(output.segment_seconds)
            results.append(output.result)
        return samples, results
