"""Distributed vector search (paper Sec. 5.1, Figure 5).

Bridges the embedding store to the simulated cluster:

- :meth:`DistributedSearcher.search` executes a real distributed query —
  per-segment local top-k routed to that segment's replica holder, then a
  coordinator merge — and returns both the merged result and the measured
  per-segment service times.  Correctness is machine-count invariant (the
  merge of local top-k lists equals the single-machine answer), which tests
  verify.
- :meth:`DistributedSearcher.measure_samples` collects service-time samples
  for the load generator, which is how Figures 9–10 are produced.

Resilience (``repro.faults``): with a replication factor above one the
searcher holds a replica map, and each segment job retries with exponential
backoff across replica holders when a search attempt raises
:class:`~repro.errors.FaultInjectionError` (injected) or the machine is
down.  A per-query deadline converts overruns into
:class:`~repro.errors.QueryTimeoutError`; degraded mode returns partial
top-k with an explicit ``coverage`` instead of failing the query; a circuit
breaker (clocked in query ordinals) quarantines repeat-offender machines.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..cluster.coordinator import ClusterSimulator
from ..cluster.machine import Machine, make_cluster, segment_holders
from ..cluster.network import NetworkModel
from ..errors import FaultInjectionError, PartialResultError, QueryTimeoutError
from ..faults.injector import FaultInjector
from ..faults.resilience import CircuitBreaker, ResiliencePolicy
from ..index.interface import SearchResult
from ..telemetry import QueryProfile, get_telemetry
from .service import EmbeddingStore

__all__ = ["DistributedSearchOutput", "DistributedSearcher"]


@dataclass
class DistributedSearchOutput:
    result: SearchResult
    segment_seconds: dict[int, float]
    per_machine_seconds: dict[int, float]
    #: Fraction of segments whose local top-k made it into the merge; 1.0 is
    #: a complete answer, below 1.0 is an explicit degraded result.
    coverage: float = 1.0
    failed_segments: list[int] = field(default_factory=list)
    retries: int = 0
    hedges: int = 0
    #: Populated only when telemetry is enabled: the query's trace tree plus
    #: the scalar facts above, ready for the bench harness to serialize.
    profile: QueryProfile | None = None


class DistributedSearcher:
    """Executes segment searches placed across simulated machines."""

    def __init__(
        self,
        store: EmbeddingStore,
        num_machines: int,
        cores_per_machine: int = 32,
        network: NetworkModel | None = None,
        replication_factor: int = 1,
        injector: FaultInjector | None = None,
        policy: ResiliencePolicy | None = None,
    ):
        self.store = store
        self.machines: list[Machine] = make_cluster(
            num_machines,
            store.num_segments,
            cores=cores_per_machine,
            replication_factor=replication_factor,
        )
        self.network = network or NetworkModel()
        self.injector = injector
        self.policy = policy if policy is not None else ResiliencePolicy()
        # The breaker's clock is the query ordinal, so breaker_cooldown is
        # "how many queries before a half-open probe".
        self.breaker = CircuitBreaker(
            self.policy.breaker_threshold, self.policy.breaker_cooldown
        )
        self._holders = segment_holders(self.machines)
        self._queries_issued = 0

    def simulator(self, dim: int | None = None, k: int = 10) -> ClusterSimulator:
        return ClusterSimulator(
            self.machines,
            self.network,
            dim=dim or self.store.embedding.dimension,
            k=k,
            injector=self.injector,
            policy=self.policy,
        )

    # ------------------------------------------------------------ execution
    def search(
        self,
        query: np.ndarray,
        k: int,
        snapshot_tid: int,
        ef: int | None = None,
    ) -> DistributedSearchOutput:
        """Real distributed top-k: local searches + coordinator merge.

        Raises :class:`QueryTimeoutError` when the policy deadline elapses
        before any segment answers (or at all, with partial results
        disallowed) and :class:`PartialResultError` when segments are
        unrecoverable and degraded answers are off or below
        ``min_coverage``.
        """
        policy = self.policy
        injector = self.injector
        tel = get_telemetry()
        query_index = self._queries_issued
        self._queries_issued += 1
        if injector is not None:
            injector.advance_query(self.machines, query_index)
        started = time.perf_counter()
        backoff_budget = 0.0  # simulated backoff counts against the deadline
        segment_seconds: dict[int, float] = {}
        per_machine: dict[int, float] = {}
        merged: list[tuple[float, int]] = []
        failed: list[int] = []
        retries = 0
        hedges = 0
        deadline_hit = False
        with tel.span(
            "coordinator.query",
            record="query.latency_seconds",
            query_index=query_index,
            k=k,
            segments=self.store.num_segments,
        ) as qspan:
            for seg_no in range(self.store.num_segments):
                if policy.deadline is not None and not deadline_hit:
                    elapsed = (time.perf_counter() - started) + backoff_budget
                    if elapsed > policy.deadline:
                        deadline_hit = True
                        qspan.event("deadline", seg_no=seg_no)
                        if injector is not None:
                            injector.record(
                                "deadline", at=float(query_index), seg_no=seg_no
                            )
                if deadline_hit:
                    failed.append(seg_no)
                    continue
                out, served_by, cost, penalty, attempts, hedged = (
                    self._search_segment_resilient(
                        seg_no, query, k, snapshot_tid, ef, query_index, tel
                    )
                )
                retries += attempts
                hedges += hedged
                backoff_budget += penalty
                if out is None:
                    failed.append(seg_no)
                    qspan.event("segment-lost", seg_no=seg_no)
                    if injector is not None:
                        injector.record(
                            "segment-lost", at=float(query_index), seg_no=seg_no
                        )
                    continue
                segment_seconds[seg_no] = cost
                per_machine[served_by] = per_machine.get(served_by, 0.0) + cost
                base = seg_no * self.store.segment_size
                merged.extend(zip(out.distances, (base + o for o in out.offsets)))
            merged.sort()
            merged = merged[:k]
            if merged:
                dists, vids = zip(*merged)
                result = SearchResult(
                    np.asarray(vids), np.asarray(dists, dtype=np.float32)
                )
            else:
                result = SearchResult.empty()
            total = self.store.num_segments
            coverage = 1.0 if total == 0 else (total - len(failed)) / total
            if tel.enabled:
                tel.inc("query.count")
                qspan.set(coverage=coverage, retries=retries, hedges=hedges)
                if coverage < 1.0:
                    tel.inc("resilience.degraded_queries")
            if failed:
                if deadline_hit and not segment_seconds:
                    raise QueryTimeoutError(
                        "deadline elapsed before any segment answered",
                        deadline=policy.deadline,
                    )
                if deadline_hit and not policy.allow_partial:
                    raise QueryTimeoutError(
                        f"query missed its {policy.deadline:g}s deadline with "
                        f"{len(failed)} segment(s) unanswered",
                        deadline=policy.deadline,
                    )
                if not policy.allow_partial:
                    raise PartialResultError(
                        f"{len(failed)} of {total} segment(s) unrecoverable "
                        f"(coverage {coverage:.2f}); enable allow_partial for "
                        f"degraded answers",
                        coverage=coverage,
                        result=result,
                    )
                if coverage < policy.min_coverage:
                    raise PartialResultError(
                        f"coverage {coverage:.2f} below required minimum "
                        f"{policy.min_coverage:.2f}",
                        coverage=coverage,
                        result=result,
                    )
        output = DistributedSearchOutput(
            result,
            segment_seconds,
            per_machine,
            coverage=coverage,
            failed_segments=failed,
            retries=retries,
            hedges=hedges,
        )
        if tel.enabled:
            output.profile = QueryProfile(
                qspan,
                metrics={
                    "coverage": coverage,
                    "retries": retries,
                    "hedges": hedges,
                    "failed_segments": list(failed),
                },
            )
        return output

    def _search_segment_resilient(
        self,
        seg_no: int,
        query: np.ndarray,
        k: int,
        snapshot_tid: int,
        ef: int | None,
        query_index: int,
        tel=None,
    ):
        """One segment job with retry/failover across replica holders.

        Returns ``(output|None, machine_id, cost_seconds, backoff_seconds,
        failures, hedges)``; the cost folds the simulated exponential backoff
        into the measured service time so the load model (and the deadline)
        sees the retry tax.

        With ``policy.hedge_after`` set, the measured service time is scaled
        by the injector's straggler multiplier and, past the threshold, a
        duplicate dispatch races the first alternate replica; the winner's
        cost is kept (the duplicate is charged ``hedge_after`` of waiting
        before it launches, per the classic tail-tolerance accounting).
        Hedging never changes the top-k payload — replicas answer from the
        same store — only the cost model and trace.
        """
        policy = self.policy
        injector = self.injector
        if tel is None:
            tel = get_telemetry()
        holders = [m for m in self._holders.get(seg_no, []) if m.alive]
        candidates = [
            m for m in holders if self.breaker.allow(m.machine_id, query_index)
        ]
        # A breaker must never turn a recoverable segment into a lost one:
        # when it quarantines every live holder, probe anyway.
        if not candidates:
            if holders and tel.enabled:
                span = tel.current_span()
                if span is not None:
                    span.event(
                        "breaker-rejected",
                        seg_no=seg_no,
                        machines=[m.machine_id for m in holders],
                    )
            candidates = holders
        penalty = 0.0
        failures = 0
        hedges = 0
        for attempt in range(policy.max_attempts):
            if not candidates:
                break
            machine = candidates[attempt % len(candidates)]
            with tel.span(
                "machine.dispatch",
                machine_id=machine.machine_id,
                seg_no=seg_no,
                attempt=attempt,
            ) as mspan:
                try:
                    if injector is not None:
                        injector.raise_segment_fault(
                            seg_no, machine.machine_id, attempt, now=float(query_index)
                        )
                    start = time.perf_counter()
                    with tel.span("segment.search", seg_no=seg_no):
                        out = self.store.search_segment(
                            seg_no, query, k, snapshot_tid, ef=ef
                        )
                    elapsed = time.perf_counter() - start
                except FaultInjectionError as exc:
                    failures += 1
                    penalty += policy.backoff(attempt)
                    mspan.set(outcome="fault", error=str(exc))
                    tel.inc("resilience.retries")
                    if self.breaker.record_failure(machine.machine_id, query_index):
                        if injector is not None:
                            injector.record(
                                "breaker-open",
                                at=float(query_index),
                                machine_id=machine.machine_id,
                            )
                    if injector is not None:
                        injector.record(
                            "retry",
                            at=float(query_index),
                            machine_id=machine.machine_id,
                            seg_no=seg_no,
                            attempt=attempt,
                        )
                    continue
                self.breaker.record_success(machine.machine_id)
                machine.record_jobs(1)
                cost = elapsed
                served_by = machine.machine_id
                if policy.hedge_after is not None:
                    # Straggler model: injected slowdown scales the measured
                    # service time; past hedge_after the duplicate races the
                    # first alternate replica and the cheaper answer wins.
                    slow = (
                        injector.slowdown(machine.machine_id, float(query_index))
                        if injector is not None
                        else 1.0
                    )
                    cost = elapsed * slow
                    mspan.set(projected_seconds=cost)
                    alternate = next(
                        (
                            m
                            for m in candidates
                            if m.machine_id != machine.machine_id
                        ),
                        None,
                    )
                    if cost > policy.hedge_after and alternate is not None:
                        out, served_by, cost, did_hedge = self._hedge_dispatch(
                            seg_no,
                            query,
                            k,
                            snapshot_tid,
                            ef,
                            query_index,
                            machine,
                            alternate,
                            out,
                            cost,
                            tel,
                        )
                        hedges += did_hedge
                mspan.set(outcome="ok", cost_seconds=cost + penalty)
                return out, served_by, cost + penalty, penalty, failures, hedges
        return None, -1, penalty, penalty, failures, hedges

    def _hedge_dispatch(
        self,
        seg_no: int,
        query: np.ndarray,
        k: int,
        snapshot_tid: int,
        ef: int | None,
        query_index: int,
        primary,
        alternate,
        primary_out,
        primary_cost: float,
        tel,
    ):
        """Duplicate-dispatch a straggling segment job to ``alternate``.

        The duplicate launches after ``hedge_after`` seconds of waiting on
        the primary, so its charged cost is ``hedge_after`` plus its own
        (slowdown-scaled) service time; the cheaper of the two dispatches
        wins.  Faults on the hedge path fall back to the primary answer.
        """
        policy = self.policy
        injector = self.injector
        with tel.span(
            "hedge.dispatch",
            machine_id=alternate.machine_id,
            seg_no=seg_no,
            primary=primary.machine_id,
        ) as hspan:
            try:
                if injector is not None:
                    injector.raise_segment_fault(
                        seg_no, alternate.machine_id, 0, now=float(query_index)
                    )
                hedge_start = time.perf_counter()
                hedge_out = self.store.search_segment(
                    seg_no, query, k, snapshot_tid, ef=ef
                )
                hedge_elapsed = time.perf_counter() - hedge_start
            except FaultInjectionError as exc:
                hspan.set(outcome="fault", error=str(exc))
                self.breaker.record_failure(alternate.machine_id, query_index)
                return primary_out, primary.machine_id, primary_cost, 1
            self.breaker.record_success(alternate.machine_id)
            alternate.record_jobs(1)
            alt_slow = (
                injector.slowdown(alternate.machine_id, float(query_index))
                if injector is not None
                else 1.0
            )
            hedge_cost = policy.hedge_after + hedge_elapsed * alt_slow
            hspan.set(outcome="ok", cost_seconds=hedge_cost)
        tel.inc("resilience.hedges")
        if injector is not None:
            injector.record(
                "hedge",
                at=float(query_index),
                machine_id=alternate.machine_id,
                seg_no=seg_no,
                detail=f"duplicate of machine {primary.machine_id}",
            )
        if hedge_cost < primary_cost:
            return hedge_out, alternate.machine_id, hedge_cost, 1
        return primary_out, primary.machine_id, primary_cost, 1

    def measure_samples(
        self,
        queries: np.ndarray,
        k: int,
        snapshot_tid: int,
        ef: int | None = None,
    ) -> tuple[list[dict[int, float]], list[SearchResult]]:
        """Measured per-query segment service times (load-generator input)."""
        samples: list[dict[int, float]] = []
        results: list[SearchResult] = []
        for query in np.asarray(queries, dtype=np.float32):
            output = self.search(query, k, snapshot_tid, ef=ef)
            samples.append(output.segment_seconds)
            results.append(output.result)
        return samples, results
