"""Distributed vector search (paper Sec. 5.1, Figure 5).

Bridges the embedding store to the simulated cluster:

- :meth:`DistributedSearcher.search` executes a real distributed query —
  per-segment local top-k routed to that segment's replica holder, then a
  coordinator merge — and returns both the merged result and the measured
  per-segment service times.  Correctness is machine-count invariant (the
  merge of local top-k lists equals the single-machine answer), which tests
  verify.
- :meth:`DistributedSearcher.measure_samples` collects service-time samples
  for the load generator, which is how Figures 9–10 are produced.

Resilience (``repro.faults``): with a replication factor above one the
searcher holds a replica map, and each segment job retries with exponential
backoff across replica holders when a search attempt raises
:class:`~repro.errors.FaultInjectionError` (injected) or the machine is
down.  A per-query deadline converts overruns into
:class:`~repro.errors.QueryTimeoutError`; degraded mode returns partial
top-k with an explicit ``coverage`` instead of failing the query; a circuit
breaker (clocked in query ordinals) quarantines repeat-offender machines.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..cluster.coordinator import ClusterSimulator
from ..cluster.machine import Machine, make_cluster, segment_holders
from ..cluster.network import NetworkModel
from ..errors import FaultInjectionError, PartialResultError, QueryTimeoutError
from ..faults.injector import FaultInjector
from ..faults.resilience import CircuitBreaker, ResiliencePolicy
from ..index.interface import SearchResult
from .service import EmbeddingStore

__all__ = ["DistributedSearchOutput", "DistributedSearcher"]


@dataclass
class DistributedSearchOutput:
    result: SearchResult
    segment_seconds: dict[int, float]
    per_machine_seconds: dict[int, float]
    #: Fraction of segments whose local top-k made it into the merge; 1.0 is
    #: a complete answer, below 1.0 is an explicit degraded result.
    coverage: float = 1.0
    failed_segments: list[int] = field(default_factory=list)
    retries: int = 0


class DistributedSearcher:
    """Executes segment searches placed across simulated machines."""

    def __init__(
        self,
        store: EmbeddingStore,
        num_machines: int,
        cores_per_machine: int = 32,
        network: NetworkModel | None = None,
        replication_factor: int = 1,
        injector: FaultInjector | None = None,
        policy: ResiliencePolicy | None = None,
    ):
        self.store = store
        self.machines: list[Machine] = make_cluster(
            num_machines,
            store.num_segments,
            cores=cores_per_machine,
            replication_factor=replication_factor,
        )
        self.network = network or NetworkModel()
        self.injector = injector
        self.policy = policy if policy is not None else ResiliencePolicy()
        # The breaker's clock is the query ordinal, so breaker_cooldown is
        # "how many queries before a half-open probe".
        self.breaker = CircuitBreaker(
            self.policy.breaker_threshold, self.policy.breaker_cooldown
        )
        self._holders = segment_holders(self.machines)
        self._queries_issued = 0

    def simulator(self, dim: int | None = None, k: int = 10) -> ClusterSimulator:
        return ClusterSimulator(
            self.machines,
            self.network,
            dim=dim or self.store.embedding.dimension,
            k=k,
            injector=self.injector,
            policy=self.policy,
        )

    # ------------------------------------------------------------ execution
    def search(
        self,
        query: np.ndarray,
        k: int,
        snapshot_tid: int,
        ef: int | None = None,
    ) -> DistributedSearchOutput:
        """Real distributed top-k: local searches + coordinator merge.

        Raises :class:`QueryTimeoutError` when the policy deadline elapses
        before any segment answers (or at all, with partial results
        disallowed) and :class:`PartialResultError` when segments are
        unrecoverable and degraded answers are off or below
        ``min_coverage``.
        """
        policy = self.policy
        injector = self.injector
        query_index = self._queries_issued
        self._queries_issued += 1
        if injector is not None:
            injector.advance_query(self.machines, query_index)
        started = time.perf_counter()
        backoff_budget = 0.0  # simulated backoff counts against the deadline
        segment_seconds: dict[int, float] = {}
        per_machine: dict[int, float] = {}
        merged: list[tuple[float, int]] = []
        failed: list[int] = []
        retries = 0
        deadline_hit = False
        for seg_no in range(self.store.num_segments):
            if policy.deadline is not None and not deadline_hit:
                elapsed = (time.perf_counter() - started) + backoff_budget
                if elapsed > policy.deadline:
                    deadline_hit = True
                    if injector is not None:
                        injector.record(
                            "deadline", at=float(query_index), seg_no=seg_no
                        )
            if deadline_hit:
                failed.append(seg_no)
                continue
            out, served_by, cost, penalty, attempts = self._search_segment_resilient(
                seg_no, query, k, snapshot_tid, ef, query_index
            )
            retries += attempts
            backoff_budget += penalty
            if out is None:
                failed.append(seg_no)
                if injector is not None:
                    injector.record(
                        "segment-lost", at=float(query_index), seg_no=seg_no
                    )
                continue
            segment_seconds[seg_no] = cost
            per_machine[served_by] = per_machine.get(served_by, 0.0) + cost
            base = seg_no * self.store.segment_size
            merged.extend(zip(out.distances, (base + o for o in out.offsets)))
        merged.sort()
        merged = merged[:k]
        if merged:
            dists, vids = zip(*merged)
            result = SearchResult(np.asarray(vids), np.asarray(dists, dtype=np.float32))
        else:
            result = SearchResult.empty()
        total = self.store.num_segments
        coverage = 1.0 if total == 0 else (total - len(failed)) / total
        if failed:
            if deadline_hit and not segment_seconds:
                raise QueryTimeoutError(
                    "deadline elapsed before any segment answered",
                    deadline=policy.deadline,
                )
            if deadline_hit and not policy.allow_partial:
                raise QueryTimeoutError(
                    f"query missed its {policy.deadline:g}s deadline with "
                    f"{len(failed)} segment(s) unanswered",
                    deadline=policy.deadline,
                )
            if not policy.allow_partial:
                raise PartialResultError(
                    f"{len(failed)} of {total} segment(s) unrecoverable "
                    f"(coverage {coverage:.2f}); enable allow_partial for "
                    f"degraded answers",
                    coverage=coverage,
                    result=result,
                )
            if coverage < policy.min_coverage:
                raise PartialResultError(
                    f"coverage {coverage:.2f} below required minimum "
                    f"{policy.min_coverage:.2f}",
                    coverage=coverage,
                    result=result,
                )
        return DistributedSearchOutput(
            result,
            segment_seconds,
            per_machine,
            coverage=coverage,
            failed_segments=failed,
            retries=retries,
        )

    def _search_segment_resilient(
        self,
        seg_no: int,
        query: np.ndarray,
        k: int,
        snapshot_tid: int,
        ef: int | None,
        query_index: int,
    ):
        """One segment job with retry/failover across replica holders.

        Returns ``(output|None, machine_id, cost_seconds, backoff_seconds,
        failures)``; the cost folds the simulated exponential backoff into
        the measured service time so the load model (and the deadline) sees
        the retry tax.
        """
        policy = self.policy
        injector = self.injector
        holders = [m for m in self._holders.get(seg_no, []) if m.alive]
        candidates = [
            m for m in holders if self.breaker.allow(m.machine_id, query_index)
        ]
        # A breaker must never turn a recoverable segment into a lost one:
        # when it quarantines every live holder, probe anyway.
        if not candidates:
            candidates = holders
        penalty = 0.0
        failures = 0
        for attempt in range(policy.max_attempts):
            if not candidates:
                break
            machine = candidates[attempt % len(candidates)]
            try:
                if injector is not None:
                    injector.raise_segment_fault(
                        seg_no, machine.machine_id, attempt, now=float(query_index)
                    )
                start = time.perf_counter()
                out = self.store.search_segment(
                    seg_no, query, k, snapshot_tid, ef=ef
                )
                elapsed = time.perf_counter() - start
            except FaultInjectionError:
                failures += 1
                penalty += policy.backoff(attempt)
                if self.breaker.record_failure(machine.machine_id, query_index):
                    if injector is not None:
                        injector.record(
                            "breaker-open",
                            at=float(query_index),
                            machine_id=machine.machine_id,
                        )
                if injector is not None:
                    injector.record(
                        "retry",
                        at=float(query_index),
                        machine_id=machine.machine_id,
                        seg_no=seg_no,
                        attempt=attempt,
                    )
                continue
            self.breaker.record_success(machine.machine_id)
            return out, machine.machine_id, elapsed + penalty, penalty, failures
        return None, -1, penalty, penalty, failures

    def measure_samples(
        self,
        queries: np.ndarray,
        k: int,
        snapshot_tid: int,
        ef: int | None = None,
    ) -> tuple[list[dict[int, float]], list[SearchResult]]:
        """Measured per-query segment service times (load-generator input)."""
        samples: list[dict[int, float]] = []
        results: list[SearchResult] = []
        for query in np.asarray(queries, dtype=np.float32):
            output = self.search(query, k, snapshot_tid, ef=ef)
            samples.append(output.segment_seconds)
            results.append(output.result)
        return samples, results
