"""Exception hierarchy for the TigerVector reproduction.

Every error raised by the library derives from :class:`ReproError` so callers
can catch a single base class.  The hierarchy mirrors the subsystems: schema
and catalog errors, GSQL compilation errors (lexing, parsing, semantic
analysis), transaction errors, and vector-search errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SchemaError(ReproError):
    """Invalid schema definition or catalog operation (e.g. duplicate type)."""


class UnknownTypeError(SchemaError):
    """A vertex/edge/attribute type referenced in a query does not exist."""


class EmbeddingCompatibilityError(SchemaError):
    """Embedding attributes mixed in one search are not compatible.

    Raised by the static analysis described in Sec. 4.1 of the paper: all
    metadata except the index type must match, otherwise the query is
    rejected with a semantic error.
    """


class GSQLError(ReproError):
    """Base class for GSQL compilation errors."""

    def __init__(self, message: str, line: int | None = None, column: int | None = None):
        location = ""
        if line is not None:
            location = f" at line {line}" + (f", column {column}" if column is not None else "")
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class GSQLLexError(GSQLError):
    """Unrecognized character or malformed token in GSQL source."""


class GSQLParseError(GSQLError):
    """GSQL source does not match the grammar."""


class GSQLSemanticError(GSQLError):
    """GSQL source is grammatical but semantically invalid."""


class TransactionError(ReproError):
    """Transaction lifecycle violation (e.g. write after commit)."""


class TransactionAborted(TransactionError):
    """The transaction was rolled back and its effects discarded."""


class VectorSearchError(ReproError):
    """Invalid vector-search request (bad k, dimension mismatch, ...)."""


class DimensionMismatchError(VectorSearchError):
    """Query vector dimensionality does not match the embedding attribute."""


class LoadingError(ReproError):
    """Data loading job failure (bad file, malformed row, ...)."""


class ClusterError(ReproError):
    """Simulated-cluster configuration or routing failure."""


class QueryTimeoutError(ReproError):
    """A distributed query overran its per-query deadline.

    Raised by the resilient query path (``repro.faults``) when the deadline
    in :class:`~repro.faults.ResiliencePolicy` elapses before enough segment
    responses arrive — either because partial results are disallowed, or
    because *no* segment answered in time (coverage would be zero).  Under
    the fault model this converts unbounded straggler/crash-induced waiting
    into a bounded, typed failure the caller can retry.
    """

    def __init__(self, message: str, deadline: float | None = None, elapsed: float | None = None):
        super().__init__(message)
        self.deadline = deadline
        self.elapsed = elapsed


class PartialResultError(ReproError):
    """A query could only be answered for a strict subset of segments.

    Raised when some segments lost every replica (or exhausted all retry
    attempts) and the active :class:`~repro.faults.ResiliencePolicy` does not
    permit degraded answers (``allow_partial=False``), or the achieved
    ``coverage`` — the fraction of segments that answered — fell below
    ``min_coverage``.  Carries the coverage and, when available, the partial
    result so callers can still use the degraded answer.
    """

    def __init__(self, message: str, coverage: float = 0.0, result=None):
        super().__init__(message)
        self.coverage = coverage
        self.result = result


class FaultInjectionError(ReproError):
    """An error deliberately injected by the fault harness (``repro.faults``).

    Models transient worker-side failures (a segment search raising on one
    replica, a dropped dispatch).  The resilient query path treats it like
    any real per-segment failure: retry with backoff, fail over to another
    replica, and count it toward the circuit breaker.
    """


class SimulatedCrash(FaultInjectionError):
    """An injected process crash (mid-commit, torn WAL write, ...).

    Unlike :class:`FaultInjectionError` this is *not* retried: it marks the
    point where the simulated process dies.  Tests abandon the in-memory
    instance and exercise WAL recovery into a fresh store.
    """


class IndexPersistenceError(ReproError):
    """An index snapshot file is unreadable or incompatible.

    Raised by :meth:`~repro.index.hnsw.HNSWIndex.load` when a saved index is
    corrupt (truncated file, bad pickle), structurally inconsistent (vector
    matrix disagreeing with the recorded count/dim), or written by a
    different format version.  Loading refuses to guess: the caller should
    rebuild the index from the segment's vectors instead.
    """


class ServeError(ReproError):
    """Query-serving layer failure (``repro.serve``)."""


class AdmissionRejectedError(ServeError):
    """A request was shed by admission control before execution.

    Raised at submit time when the server's bounded queue is already at
    ``max_queue_depth`` (``reason='queue_full'``), when the tenant's token
    bucket is empty (:class:`RateLimitedError`), or when the server is
    shutting down (``reason='shutdown'``).  Shedding at the door keeps queue
    wait bounded under overload instead of letting every request time out.
    """

    def __init__(self, message: str, reason: str = "queue_full"):
        super().__init__(message)
        self.reason = reason


class RateLimitedError(AdmissionRejectedError):
    """A tenant exceeded its token-bucket rate limit."""

    def __init__(self, message: str):
        super().__init__(message, reason="rate_limited")


class StalenessBoundError(ServeError):
    """A request's freshness contract could not be met in time.

    Raised by the serving SLA path when a request carries ``max_staleness``
    (maximum tolerated watermark-TID lag of the pinned snapshot) or a
    read-your-writes ``session_token`` (a commit TID the serving snapshot
    must cover), and no fresh-enough snapshot became available within the
    wait budget.  The failure is *typed and fast* by design: a client that
    cannot be served fresh data learns so immediately instead of silently
    receiving a stale answer.

    ``lag`` is the observed watermark lag at rejection time, ``session_token``
    / ``snapshot_tid`` describe a token violation, and ``waited`` is how long
    the worker retried before giving up.
    """

    def __init__(
        self,
        message: str,
        max_staleness: int | None = None,
        lag: int | None = None,
        session_token: int | None = None,
        snapshot_tid: int | None = None,
        waited: float = 0.0,
    ):
        super().__init__(message)
        self.max_staleness = max_staleness
        self.lag = lag
        self.session_token = session_token
        self.snapshot_tid = snapshot_tid
        self.waited = waited


class ElasticError(ServeError):
    """Elastic serve-tier failure (``repro.elastic``): ring, routing,
    rebalancing, or autoscaling misconfiguration."""


class SegmentOwnershipError(ElasticError):
    """A shard was asked to serve a segment group it does not own.

    Raised by :class:`~repro.elastic.shard.ShardServer` when a routed
    sub-request reaches execution after the group's ownership moved away —
    the hazard the rebalancer's watermark-drain handoff exists to prevent
    (new requests gate at the router, in-flight requests drain before the
    transfer).  The router treats it as retryable: it re-resolves the
    owner from the ring and re-dispatches, so a losing race costs one
    retry, never a failed query.
    """

    def __init__(self, message: str, tenant: str | None = None, group: int | None = None):
        super().__init__(message)
        self.tenant = tenant
        self.group = group


class WALCorruptionError(ReproError):
    """The write-ahead log contains a corrupt record that is not a torn tail.

    A torn *final* record (crash mid-append) is expected under the fault
    model and is tolerated/truncated by replay; a malformed record in the
    middle of the log means the durable history itself is damaged and replay
    refuses to guess.
    """


class ExplorationError(ReproError):
    """The interleaving explorer could not make scheduling progress.

    Raised for scheduler stalls (a controlled thread blocked on something
    the explorer cannot see) and runaway schedules that exceed the step
    budget — infrastructure failures, as opposed to a scenario invariant
    violation, which surfaces as the scenario's own exception inside a
    :class:`repro.analysis.explore.RunResult`.
    """
