"""Exception hierarchy for the TigerVector reproduction.

Every error raised by the library derives from :class:`ReproError` so callers
can catch a single base class.  The hierarchy mirrors the subsystems: schema
and catalog errors, GSQL compilation errors (lexing, parsing, semantic
analysis), transaction errors, and vector-search errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SchemaError(ReproError):
    """Invalid schema definition or catalog operation (e.g. duplicate type)."""


class UnknownTypeError(SchemaError):
    """A vertex/edge/attribute type referenced in a query does not exist."""


class EmbeddingCompatibilityError(SchemaError):
    """Embedding attributes mixed in one search are not compatible.

    Raised by the static analysis described in Sec. 4.1 of the paper: all
    metadata except the index type must match, otherwise the query is
    rejected with a semantic error.
    """


class GSQLError(ReproError):
    """Base class for GSQL compilation errors."""

    def __init__(self, message: str, line: int | None = None, column: int | None = None):
        location = ""
        if line is not None:
            location = f" at line {line}" + (f", column {column}" if column is not None else "")
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class GSQLLexError(GSQLError):
    """Unrecognized character or malformed token in GSQL source."""


class GSQLParseError(GSQLError):
    """GSQL source does not match the grammar."""


class GSQLSemanticError(GSQLError):
    """GSQL source is grammatical but semantically invalid."""


class TransactionError(ReproError):
    """Transaction lifecycle violation (e.g. write after commit)."""


class TransactionAborted(TransactionError):
    """The transaction was rolled back and its effects discarded."""


class VectorSearchError(ReproError):
    """Invalid vector-search request (bad k, dimension mismatch, ...)."""


class DimensionMismatchError(VectorSearchError):
    """Query vector dimensionality does not match the embedding attribute."""


class LoadingError(ReproError):
    """Data loading job failure (bad file, malformed row, ...)."""


class ClusterError(ReproError):
    """Simulated-cluster configuration or routing failure."""
