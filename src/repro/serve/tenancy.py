"""Tenants, the tenant registry, and the weighted-fair request queue.

A tenant bundles the per-client QoS knobs: a scheduling ``weight`` (share
of worker capacity under contention), an optional token-bucket rate limit,
an RBAC ``role`` from :mod:`repro.core.auth` (non-admin tenants are routed
through ``AccessController.authorized_search``), and an ``allow_writes``
flag enforced on the GSQL path.

Scheduling is stride-based weighted fair queueing: each tenant carries a
virtual *pass*; the dispatcher always pops from the non-empty tenant with
the smallest pass and advances it by ``1 / weight``, so a weight-3 tenant
drains three requests for every one of a weight-1 tenant while neither
starves.

*Within* a tenant, dequeue is deadline-ordered (EDF) rather than FIFO:
each per-tenant queue is a heap keyed by ``(deadline, arrival_seq)``, so
a near-deadline request runs before an earlier-arrived request with
slack, and requests without deadlines (or with equal deadlines) keep
exact arrival order via the monotone sequence tiebreak.  Cross-tenant
fairness is untouched — EDF only chooses *which* of a tenant's requests
uses the stride slot the tenant already won.  Every pop that overtakes
an earlier arrival is counted in ``serve.deadline_reorders`` (recorded
outside the condition: the queue stays a lock leaf).
"""

from __future__ import annotations

import heapq
import math
import threading
import time
from dataclasses import dataclass
from typing import Callable, Iterable

from ..errors import AdmissionRejectedError, ServeError
from ..telemetry import get_telemetry

__all__ = ["Tenant", "TenantRegistry", "WeightedFairQueue"]


@dataclass(frozen=True)
class Tenant:
    """One client of the query server and its QoS contract."""

    name: str
    weight: float = 1.0
    role: str = "admin"
    rate_limit: float | None = None  # sustained requests/second; None = unlimited
    burst: float | None = None  # token-bucket capacity; default max(1, rate_limit)
    allow_writes: bool = True
    #: Fraction of the server's queue bound this tenant may occupy alone
    #: (None = no per-tenant cap).  A flooding tenant then sheds at its own
    #: share instead of filling the whole queue against everyone else.
    max_queue_share: float | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ServeError("tenant name must be non-empty")
        if self.weight <= 0:
            raise ServeError(f"tenant '{self.name}': weight must be positive")
        if self.rate_limit is not None and self.rate_limit <= 0:
            raise ServeError(f"tenant '{self.name}': rate_limit must be positive")
        if self.max_queue_share is not None and not 0.0 < self.max_queue_share <= 1.0:
            raise ServeError(
                f"tenant '{self.name}': max_queue_share must be in (0, 1]"
            )


class TenantRegistry:
    """Named tenants known to one server; always contains ``default``."""

    def __init__(self, tenants: Iterable[Tenant] | None = None):
        self._tenants: dict[str, Tenant] = {}
        for tenant in tenants or ():
            self._tenants[tenant.name] = tenant
        if "default" not in self._tenants:
            self._tenants["default"] = Tenant("default")

    def register(self, tenant: Tenant) -> Tenant:
        self._tenants[tenant.name] = tenant
        return tenant

    def get(self, name: str) -> Tenant:
        tenant = self._tenants.get(name)
        if tenant is None:
            raise ServeError(f"unknown tenant '{name}'")
        return tenant

    def names(self) -> list[str]:
        return list(self._tenants)


class WeightedFairQueue:
    """Bounded-latency fair scheduler over per-tenant FIFO queues.

    Thread-safe; every structural mutation happens under one condition
    variable, which is also the wakeup channel for blocked workers.  The
    queue is *leaf-like* by design: no method calls back into the engine
    while holding the condition.
    """

    def __init__(self, registry: TenantRegistry):
        self._registry = registry
        self._cond = threading.Condition(threading.Lock())
        #: Per-tenant EDF heaps of ``(deadline_key, arrival_seq, item)``.
        self._queues: dict[str, list] = {}
        self._passes: dict[str, float] = {}
        self._vtime = 0.0
        self._size = 0
        self._puts = 0  # monotone arrival counter; see wait_for_put
        self._seq = 0  # within-tenant FIFO tiebreak for equal deadlines
        self._closed = False

    @staticmethod
    def _deadline_key(item) -> float:
        """EDF sort key: the item's deadline, or +inf for pure FIFO."""
        deadline = getattr(item, "deadline", None)
        return math.inf if deadline is None else float(deadline)

    # ------------------------------------------------------------- producers
    def put(self, item, tenant_name: str) -> int:
        """Enqueue for ``tenant_name``; returns the new total depth."""
        weight = self._registry.get(tenant_name).weight  # raises on unknown
        del weight
        with self._cond:
            if self._closed:
                raise AdmissionRejectedError(
                    "server is shutting down", reason="shutdown"
                )
            queue = self._queues.get(tenant_name)
            if queue is None:
                queue = self._queues[tenant_name] = []
            if not queue:
                # Stride activation: a long-idle tenant resumes at the
                # current virtual time instead of monopolizing the workers
                # with its stale (tiny) pass.
                self._passes[tenant_name] = max(
                    self._passes.get(tenant_name, 0.0), self._vtime
                )
            self._seq += 1
            heapq.heappush(queue, (self._deadline_key(item), self._seq, item))
            self._size += 1
            self._puts += 1
            self._cond.notify_all()
            return self._size

    # ------------------------------------------------------------- consumers
    @property
    def closed(self) -> bool:
        with self._cond:
            return self._closed

    def depth(self) -> int:
        with self._cond:
            return self._size

    def depth_for(self, tenant_name: str) -> int:
        """How many queued requests belong to one tenant (admission input)."""
        with self._cond:
            queue = self._queues.get(tenant_name)
            return len(queue) if queue else 0

    def _pop_fair(self, eligible: list[str]):  # repro: noqa[R001] -- only reachable from take/drain_matching, which hold _cond
        """EDF-pop from the eligible tenant with the smallest pass (cond held).

        Returns ``(item, reordered)``; ``reordered`` is True when the pop
        overtook an earlier arrival of the same tenant (a deadline jump),
        so callers can record ``serve.deadline_reorders`` after releasing
        the condition.
        """
        name = min(eligible, key=lambda n: (self._passes[n], n))
        queue = self._queues[name]
        deadline_key, seq, item = heapq.heappop(queue)
        # An infinite-key pop means no deadline-bearing entry remains, and
        # the seq tiebreak makes it the oldest arrival — never a reorder.
        reordered = deadline_key != math.inf and any(
            entry[1] < seq for entry in queue
        )
        self._size -= 1
        self._vtime = max(self._vtime, self._passes[name])
        self._passes[name] += 1.0 / self._registry.get(name).weight
        return item, reordered

    def take(self, timeout: float | None = None):
        """Dequeue the fair-scheduled next request.

        Returns ``None`` on timeout, or when the queue is closed and empty.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        item = reordered = None
        with self._cond:
            while True:
                if self._size:
                    eligible = [n for n, q in self._queues.items() if q]
                    item, reordered = self._pop_fair(eligible)
                    break
                if self._closed:
                    return None
                if deadline is None:
                    self._cond.wait()
                else:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return None
                    self._cond.wait(remaining)
        if reordered:
            get_telemetry().inc("serve.deadline_reorders")
        return item

    def drain_matching(self, predicate: Callable, limit: int) -> list:
        """Pop up to ``limit`` queue *fronts* that satisfy ``predicate``.

        Only fronts (each tenant's EDF head) are considered so per-tenant
        dequeue order is preserved; fairness charges apply as in
        :meth:`take`.  Non-blocking.
        """
        out: list = []
        reorders = 0
        with self._cond:
            while len(out) < limit and self._size:
                eligible = [
                    n for n, q in self._queues.items() if q and predicate(q[0][2])
                ]
                if not eligible:
                    break
                item, reordered = self._pop_fair(eligible)
                out.append(item)
                reorders += int(reordered)
        if reorders:
            get_telemetry().inc("serve.deadline_reorders", reorders)
        return out

    def put_sequence(self) -> int:
        """Monotone count of :meth:`put` calls; pair with :meth:`wait_for_put`."""
        with self._cond:
            return self._puts

    def wait_for_put(self, since: int, timeout: float) -> int:
        """Block until a put lands after ``since`` (or timeout/close).

        Returns the current put counter.  Unlike waiting for "non-empty",
        this blocks even while non-matching items sit queued — the
        batcher's cue to re-scan queue fronts is a *new arrival*, so a
        queue full of incompatible requests costs it one wait, not a busy
        spin through the whole collection window.
        """
        deadline = time.monotonic() + timeout
        with self._cond:
            while self._puts == since and not self._closed:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._cond.wait(remaining)
            return self._puts

    def close(self) -> list:
        """Refuse new work, wake all waiters, and return undelivered items."""
        with self._cond:
            self._closed = True
            leftovers: list = []
            for queue in self._queues.values():
                leftovers.extend(entry[2] for entry in sorted(queue))
                queue.clear()
            self._size = 0
            self._cond.notify_all()
            return leftovers
