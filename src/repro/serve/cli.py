"""The ``repro-serve`` CLI: a self-contained serving demo.

Builds a seeded in-memory graph with one embedding attribute, starts a
:class:`QueryServer`, drives it from concurrent client threads, and prints
throughput plus the serve metrics snapshot.  Useful as a quickstart and as
a smoke check that batching/caching/admission behave on a given machine::

    repro-serve --vectors 2000 --dim 32 --queries 400 --concurrency 8
    repro-serve --no-batching --no-cache     # per-query baseline
    repro-serve --tier-budget-mb 1          # demote cold segments to PQ
    repro-serve --servers 3                 # elastic sharded tier demo

With ``--servers N`` (N > 1) the demo routes through an
:class:`~repro.elastic.router.ElasticTier` instead of a single
``QueryServer``, performs one live ``rebalance_evenly`` mid-run under
traffic, and prints the ownership map, rebalance count, and per-replica
cache hit rates.
"""

from __future__ import annotations

import argparse
import sys
import threading
import time

import numpy as np

from ..core.database import TigerVectorDB
from ..graph.schema import Attribute
from ..telemetry import Telemetry, use_telemetry
from ..types import AttrType, Metric
from .server import QueryServer, ServeConfig

__all__ = ["main"]


def build_demo_db(num_vectors: int, dim: int, seed: int, segment_size: int) -> TigerVectorDB:
    rng = np.random.default_rng(seed)
    vectors = rng.standard_normal((num_vectors, dim)).astype(np.float32)
    db = TigerVectorDB(segment_size=segment_size)
    db.schema.create_vertex_type(
        "Item", [Attribute("id", AttrType.INT, primary_key=True)]
    )
    db.schema.add_embedding_attribute(
        "Item", "emb", dimension=dim, model="demo", metric=Metric.L2
    )
    db.bulk_load_vertices("Item", [{"id": i} for i in range(num_vectors)])
    db.bulk_load_embeddings(
        "Item", "emb", list(range(num_vectors)), vectors, num_threads=2
    )
    return db


def run_elastic_demo(args) -> int:
    """The ``--servers N`` path: sharded tier, live rebalance, router stats."""
    from ..elastic import ElasticTier

    db = build_demo_db(args.vectors, args.dim, args.seed, args.segment_size)
    rng = np.random.default_rng(args.seed + 1)
    queries = rng.standard_normal((args.queries, args.dim)).astype(np.float32)
    config = ServeConfig(
        workers=args.workers,
        enable_batching=not args.no_batching,
        enable_cache=not args.no_cache,
    )
    telemetry = Telemetry()
    latencies: list[float] = []
    lat_lock = threading.Lock()

    def client(worker_id: int) -> None:
        for qi in range(worker_id, len(queries), args.concurrency):
            start = time.perf_counter()
            tier.search(["Item.emb"], queries[qi], args.k)
            elapsed = time.perf_counter() - start
            with lat_lock:
                latencies.append(elapsed)

    with use_telemetry(telemetry), db, ElasticTier(db, num_servers=args.servers, config=config) as tier:
        start = time.perf_counter()
        threads = [
            threading.Thread(target=client, args=(i,))
            for i in range(args.concurrency)
        ]
        for thread in threads:
            thread.start()
        # A live handoff under traffic, so the printed stats demonstrate
        # the drain/transfer/re-admit path rather than a quiescent move.
        tier.rebalance_evenly("default", ["Item.emb"])
        for thread in threads:
            thread.join()
        wall = time.perf_counter() - start
        stats = tier.stats()

    lat = sorted(latencies)
    p50 = lat[len(lat) // 2]
    p95 = lat[min(len(lat) - 1, int(len(lat) * 0.95))]
    print(
        f"served {len(lat)} queries in {wall:.3f}s  "
        f"({len(lat) / wall:,.0f} QPS, {args.servers} servers, "
        f"concurrency {args.concurrency})"
    )
    print(f"latency p50 {p50 * 1e3:.2f}ms  p95 {p95 * 1e3:.2f}ms")
    print(
        f"  router: {stats['routed_requests']} routed, "
        f"{stats['route_retries']} route retries, "
        f"{stats['rebalances']} rebalances, "
        f"{stats['crash_failovers']} crash failovers, "
        f"{stats['cache_coherence_bypass']} coherence bypasses"
    )
    print(f"  live servers: {', '.join(stats['live_servers'])}")
    print("  ownership map:")
    for server in sorted(stats["ownership"]):
        for tenant, groups in sorted(stats["ownership"][server].items()):
            print(f"    {server}: tenant {tenant} -> groups {groups}")
    print("  per-replica:")
    for name, srv in sorted(stats["servers"].items()):
        print(
            f"    {name}: owned {srv['owned']}, "
            f"in/out rebalances {srv['rebalances_in']}/{srv['rebalances_out']}, "
            f"cache hit ratio {srv['cache_hit_ratio']:.1%} "
            f"({srv['cache_entries']} entries), "
            f"workers alive {srv['workers_alive']}"
        )
    return 0


def run_demo(args) -> int:
    if getattr(args, "servers", 1) > 1:
        return run_elastic_demo(args)
    db = build_demo_db(args.vectors, args.dim, args.seed, args.segment_size)
    tier = None
    if args.tier_budget_mb is not None:
        tier = db.enable_tiering(budget_bytes=int(args.tier_budget_mb * 1024 * 1024))
        db.vacuum()  # classify segments before serving starts
    rng = np.random.default_rng(args.seed + 1)
    queries = rng.standard_normal((args.queries, args.dim)).astype(np.float32)
    config = ServeConfig(
        workers=args.workers,
        enable_batching=not args.no_batching,
        enable_cache=not args.no_cache,
    )
    telemetry = Telemetry()
    latencies: list[float] = []
    lat_lock = threading.Lock()

    def client(worker_id: int) -> None:
        for qi in range(worker_id, len(queries), args.concurrency):
            start = time.perf_counter()
            server.search(["Item.emb"], queries[qi], args.k)
            elapsed = time.perf_counter() - start
            with lat_lock:
                latencies.append(elapsed)

    with use_telemetry(telemetry), db, QueryServer(db, config) as server:
        start = time.perf_counter()
        threads = [
            threading.Thread(target=client, args=(i,))
            for i in range(args.concurrency)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        wall = time.perf_counter() - start
        stats = server.stats()

    lat = sorted(latencies)
    p50 = lat[len(lat) // 2]
    p95 = lat[min(len(lat) - 1, int(len(lat) * 0.95))]
    print(
        f"served {len(lat)} queries in {wall:.3f}s  "
        f"({len(lat) / wall:,.0f} QPS, concurrency {args.concurrency})"
    )
    print(f"latency p50 {p50 * 1e3:.2f}ms  p95 {p95 * 1e3:.2f}ms")
    counters = telemetry.registry.snapshot()["counters"]
    for name in sorted(counters):
        if name.startswith("serve."):
            print(f"  {name} = {counters[name]}")
    if stats["cache"] is not None:
        cache = stats["cache"]
        print(
            f"  cache: {cache['hits']} hits / {cache['misses']} misses "
            f"(hit ratio {cache['hit_ratio']:.1%}, {cache['entries']} entries)"
        )
        for tenant in sorted(cache.get("per_tenant", {})):
            part = cache["per_tenant"][tenant]
            print(
                f"    tenant {tenant}: {part['hits']} hits / "
                f"{part['misses']} misses, {part['entries']} entries, "
                f"{part['bytes']} bytes"
            )
    if tier is not None:
        snap = tier.stats_snapshot()
        cold_hits = counters.get("tier.cold_hits", 0)
        print(
            f"  tier: {snap['hot_segments']} hot / {snap['cold_segments']} cold "
            f"segments, {snap['resident_bytes']:,} resident bytes "
            f"(budget {snap['budget_bytes']:,})"
        )
        print(
            f"    {snap['accesses']} accesses, {cold_hits} cold hits, "
            f"{snap['demotions']} demotions, {snap['promotions']} promotions"
        )
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-serve", description="concurrent query-serving demo"
    )
    parser.add_argument("--vectors", type=int, default=2000)
    parser.add_argument("--dim", type=int, default=32)
    parser.add_argument("--segment-size", type=int, default=1024)
    parser.add_argument("--queries", type=int, default=400)
    parser.add_argument("--concurrency", type=int, default=8)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument(
        "--servers",
        type=int,
        default=1,
        help="route through an elastic tier of this many sharded servers",
    )
    parser.add_argument("--k", type=int, default=10)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--no-batching", action="store_true")
    parser.add_argument("--no-cache", action="store_true")
    parser.add_argument(
        "--tier-budget-mb",
        type=float,
        default=None,
        help="enable tiered storage with this hot-tier byte budget (MiB)",
    )
    args = parser.parse_args(argv)
    return run_demo(args)


if __name__ == "__main__":
    sys.exit(main())
