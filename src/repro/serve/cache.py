"""Snapshot-keyed LRU result cache.

Keys embed the MVCC watermark (:meth:`EmbeddingStore.watermark`) of every
store the query touches, read *before* the executing snapshot is taken.
Any commit, delta merge, or index merge on a touched store perturbs its
watermark, so stale entries become unreachable rather than needing
explicit invalidation.

A commit can interleave with the watermark-read -> snapshot-pin sequence
in two ways, and they are not symmetric:

- *Commit fully publishes in between* (watermark read pre-commit,
  snapshot post-commit): benign.  The entry is merely fresher than its
  key claims, and the commit's own watermark bump guarantees no later
  lookup ever matches the stale key.
- *Commit is mid-publication* (the embedding hook has already appended
  delta records — bumping ``delta_store.max_tid``, a watermark
  component — but ``last_tid`` is not yet published): the worker reads a
  post-commit watermark yet pins a pre-commit snapshot.  Caching that
  result would serve the pre-commit top-k to every post-commit lookup.
  The server therefore validates after pinning: if any watermark TID
  component (:meth:`EmbeddingStore.watermark_tid`) exceeds the
  snapshot's TID, the result is served but **not** cached
  (``serve.cache_bypass_commit_race``).

Because puts pass that validation, a hit is always consistent: the entry
was computed on a snapshot at least as new as every TID in its key.

Values are the sorted ``(distance, vertex_type, vid)`` triples from
:func:`repro.core.search.vector_search_merged` — immutable, and carrying
the distances needed to re-fill a caller's distance map on a hit.  Each
entry records the *kernel* that produced it: ``"hnsw"`` per-query,
``"fused"`` exact batch scan (default-``ef`` batches; never worse than the
per-query HNSW answer, distances equal up to BLAS reduction order in the
last ulp), or ``"fused-hnsw"`` lockstep fused HNSW traversal
(explicit-``ef`` batches; identical results to the per-query path, every
distance produced by the same kernel calls).

The cache is a lock leaf: methods never call into the engine or telemetry
while holding the lock; :meth:`put` returns the eviction count so the
caller can record metrics outside it.

:class:`ServeResultCache` composes one :class:`ResultCache` per tenant so
one tenant's churn can never evict another tenant's hot entries; the
server routes every probe/fill through the caller's partition.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Iterable

import numpy as np

from ..analysis.hooks import schedule_point
from ..errors import ServeError

__all__ = ["ResultCache", "ServeResultCache"]

# Rough per-entry accounting: a (dist, vtype, vid) triple plus dict/key
# overhead.  Exactness doesn't matter — the bound just has to scale with
# actual retained data.
_TRIPLE_BYTES = 64
_ENTRY_OVERHEAD = 256


class ResultCache:
    """LRU cache of top-k triples, bounded by bytes and entry count."""

    def __init__(self, max_bytes: int = 32 << 20, max_entries: int = 1024):
        if max_bytes < 1 or max_entries < 1:
            raise ServeError("cache bounds must be positive")
        self.max_bytes = int(max_bytes)
        self.max_entries = int(max_entries)
        self._lock = threading.Lock()
        self._entries: OrderedDict[tuple, tuple] = OrderedDict()
        self._bytes = 0
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    @staticmethod
    def key(
        vector_attributes: Iterable[str],
        query_vector: np.ndarray,
        k: int,
        ef: int | None,
        watermarks: Iterable[tuple],
    ) -> tuple:
        """Build a cache key; ``watermarks`` must cover every touched store."""
        query = np.asarray(query_vector, dtype=np.float32)
        return (
            tuple(vector_attributes),
            int(k),
            ef,
            query.tobytes(),
            tuple(watermarks),
        )

    @staticmethod
    def _estimate(key: tuple, value: tuple) -> int:
        return len(key[3]) + _TRIPLE_BYTES * len(value) + _ENTRY_OVERHEAD

    def get(self, key: tuple):
        """The cached triples, or ``None``; records hit/miss internally."""
        schedule_point("serve.cache.get")
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return entry[0]

    def put(self, key: tuple, value: tuple, kernel: str = "hnsw") -> int:
        """Insert (or refresh) an entry; returns how many LRU evictions ran.

        ``kernel`` records which execution path produced the value (see the
        module docstring) for introspection via :meth:`kernel` and
        :meth:`stats`.
        """
        nbytes = self._estimate(key, value)
        schedule_point("serve.cache.put")
        evicted = 0
        with self._lock:
            old = self._entries.pop(key, None)
            if old is not None:
                self._bytes -= old[1]
            self._entries[key] = (value, nbytes, kernel)
            self._bytes += nbytes
            while self._entries and (
                self._bytes > self.max_bytes or len(self._entries) > self.max_entries
            ):
                _, (_, dropped, _) = self._entries.popitem(last=False)
                self._bytes -= dropped
                evicted += 1
            self._evictions += evicted
        return evicted

    def kernel(self, key: tuple) -> str | None:
        """Which kernel produced the entry (no LRU/stat effects); None if absent."""
        with self._lock:
            entry = self._entries.get(key)
            return None if entry is None else entry[2]

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._bytes = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> dict:
        with self._lock:
            lookups = self._hits + self._misses
            kernels: dict[str, int] = {}
            for _, _, kernel in self._entries.values():
                kernels[kernel] = kernels.get(kernel, 0) + 1
            return {
                "entries": len(self._entries),
                "bytes": self._bytes,
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
                "hit_ratio": (self._hits / lookups) if lookups else 0.0,
                "kernels": kernels,
            }


class ServeResultCache:
    """Per-tenant partitioned result cache (noisy-neighbor isolation).

    One :class:`ResultCache` partition per tenant, created lazily on first
    use and bounded *individually*: tenant B churning through thousands of
    distinct queries can only evict entries from B's own partition, so
    tenant A's hot entries — and with them A's hit rate and latency — are
    untouched by B's flood.  Partition bounds default to a quarter of the
    configured totals (a server rarely has more than a handful of hot
    tenants; a tenant explosion degrades capacity per tenant, never
    correctness).

    Same locking stance as :class:`ResultCache`: partitions are lock
    leaves, and the partition map has its own leaf lock that never nests
    inside a partition's.
    """

    _DEFAULT_SPLIT = 4

    def __init__(
        self,
        max_bytes: int = 32 << 20,
        max_entries: int = 1024,
        partition_max_bytes: int | None = None,
        partition_max_entries: int | None = None,
    ):
        if max_bytes < 1 or max_entries < 1:
            raise ServeError("cache bounds must be positive")
        self.partition_max_bytes = int(
            partition_max_bytes
            if partition_max_bytes is not None
            else max(1, max_bytes // self._DEFAULT_SPLIT)
        )
        self.partition_max_entries = int(
            partition_max_entries
            if partition_max_entries is not None
            else max(1, max_entries // self._DEFAULT_SPLIT)
        )
        self._lock = threading.Lock()
        self._partitions: dict[str, ResultCache] = {}

    key = staticmethod(ResultCache.key)

    def partition(self, tenant_name: str) -> ResultCache:
        """The tenant's partition, created on first use."""
        with self._lock:
            part = self._partitions.get(tenant_name)
            if part is None:
                part = ResultCache(
                    self.partition_max_bytes, self.partition_max_entries
                )
                self._partitions[tenant_name] = part
            return part

    def get(self, tenant_name: str, key: tuple):
        return self.partition(tenant_name).get(key)

    def put(self, tenant_name: str, key: tuple, value: tuple, kernel: str = "hnsw") -> int:
        return self.partition(tenant_name).put(key, value, kernel=kernel)

    def kernel(self, tenant_name: str, key: tuple) -> str | None:
        return self.partition(tenant_name).kernel(key)

    def clear(self) -> None:
        with self._lock:
            partitions = list(self._partitions.values())
        for part in partitions:
            part.clear()

    def __len__(self) -> int:
        with self._lock:
            partitions = list(self._partitions.values())
        return sum(len(part) for part in partitions)

    def stats(self) -> dict:
        """Aggregate stats plus a ``per_tenant`` breakdown.

        Aggregate keys match :meth:`ResultCache.stats` so callers written
        against the unpartitioned cache keep working unchanged.
        """
        with self._lock:
            partitions = dict(self._partitions)
        per_tenant = {name: part.stats() for name, part in sorted(partitions.items())}
        total = {
            "entries": 0,
            "bytes": 0,
            "hits": 0,
            "misses": 0,
            "evictions": 0,
        }
        kernels: dict[str, int] = {}
        for stats in per_tenant.values():
            for field in total:
                total[field] += stats[field]
            for kernel, count in stats["kernels"].items():
                kernels[kernel] = kernels.get(kernel, 0) + count
        lookups = total["hits"] + total["misses"]
        total["hit_ratio"] = (total["hits"] / lookups) if lookups else 0.0
        total["kernels"] = kernels
        total["per_tenant"] = per_tenant
        return total
