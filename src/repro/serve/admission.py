"""Admission control: bounded queues and per-tenant token buckets.

Overload policy is *shed at the door*: a request that cannot be queued
within bounds, or whose tenant is over its rate limit, fails the submit
call immediately with a typed error instead of joining an ever-growing
queue.  Combined with the dispatcher's deadline check this keeps tail
latency bounded under open-loop overload — requests are either answered,
shed (:class:`~repro.errors.AdmissionRejectedError` /
:class:`~repro.errors.RateLimitedError`), or deadline-failed
(:class:`~repro.errors.QueryTimeoutError`); never silently dropped.
"""

from __future__ import annotations

import threading

from ..errors import AdmissionRejectedError, RateLimitedError, ServeError
from .tenancy import Tenant, TenantRegistry

__all__ = ["AdmissionController", "TokenBucket"]


class TokenBucket:
    """Deterministic token bucket on an injectable monotonic clock.

    ``rate`` tokens/second refill up to ``burst`` capacity; each admit
    costs one token.  The caller supplies ``now`` so tests can drive the
    bucket without sleeping.
    """

    def __init__(self, rate: float, burst: float | None = None):
        if rate <= 0:
            raise ServeError("token bucket rate must be positive")
        self.rate = float(rate)
        self.burst = float(burst) if burst is not None else max(1.0, self.rate)
        if self.burst < 1.0:
            raise ServeError("token bucket burst must allow at least one request")
        self._lock = threading.Lock()
        self._tokens = self.burst
        self._stamp: float | None = None

    def try_acquire(self, now: float) -> bool:
        with self._lock:
            if self._stamp is not None and now > self._stamp:
                self._tokens = min(
                    self.burst, self._tokens + (now - self._stamp) * self.rate
                )
            self._stamp = now if self._stamp is None else max(self._stamp, now)
            if self._tokens >= 1.0:
                self._tokens -= 1.0
                return True
            return False


class AdmissionController:
    """Gate every submit: bounded queue depth, then the tenant's bucket."""

    def __init__(self, registry: TenantRegistry, max_queue_depth: int):
        if max_queue_depth < 1:
            raise ServeError("max_queue_depth must be at least 1")
        self.registry = registry
        self.max_queue_depth = int(max_queue_depth)
        self._lock = threading.Lock()
        self._buckets: dict[str, TokenBucket] = {}

    def bucket_for(self, tenant: Tenant) -> TokenBucket | None:
        if tenant.rate_limit is None:
            return None
        with self._lock:
            bucket = self._buckets.get(tenant.name)
            if bucket is None:
                bucket = TokenBucket(tenant.rate_limit, tenant.burst)
                self._buckets[tenant.name] = bucket
            return bucket

    def admit(
        self, tenant: Tenant, queue_depth: int, now: float, tenant_depth: int = 0
    ) -> None:
        """Raise a typed shed error unless the request may be queued.

        The tenant's bucket is checked first so an over-limit tenant sees
        :class:`RateLimitedError` (its own fault) rather than the global
        queue-full rejection; a tenant with a ``max_queue_share`` is then
        capped at its own slice of the queue bound (``reason='tenant_share'``
        — also its own fault, and the reason a flooding tenant cannot fill
        the queue against everyone else).
        """
        bucket = self.bucket_for(tenant)
        if bucket is not None and not bucket.try_acquire(now):
            raise RateLimitedError(
                f"tenant '{tenant.name}' is over its rate limit "
                f"({tenant.rate_limit:g} requests/s)"
            )
        if tenant.max_queue_share is not None:
            allowance = max(1, int(tenant.max_queue_share * self.max_queue_depth))
            if tenant_depth >= allowance:
                raise AdmissionRejectedError(
                    f"tenant '{tenant.name}' is over its queue share "
                    f"({tenant_depth}/{allowance} of {self.max_queue_depth})",
                    reason="tenant_share",
                )
        if queue_depth >= self.max_queue_depth:
            raise AdmissionRejectedError(
                f"serve queue full ({queue_depth}/{self.max_queue_depth})"
            )
