"""The concurrent multi-tenant query server.

Request lifecycle::

    submit -> admission (bounded queue, token bucket)      [typed shed]
           -> weighted-fair queue                           [per-tenant]
           -> worker dequeue -> deadline check              [typed timeout]
           -> micro-batch collection (batcher.py)
           -> result cache lookup (cache.py, MVCC-watermark keys)
           -> fused batch scan or per-query VectorSearch on one snapshot
           -> future completion + telemetry

Correctness contracts:

- **Byte identity**: with batching and caching disabled, every answer is
  produced by the same ``vector_search_merged`` + ``build_topk_vertex_set``
  pipeline (same snapshot semantics, same tie-breaking, same distance-map
  fills) as a direct :meth:`TigerVectorDB.vector_search` call; GSQL goes
  through the same :meth:`GSQLSession.run`.
- **Never hangs, never drops**: every accepted request's future is
  completed — with a result, or with a typed :class:`ReproError`
  (``QueryTimeoutError`` for deadline misses, ``AdmissionRejectedError``
  with ``reason='shutdown'`` for requests drained at stop).
- **Freshness**: cache keys embed store watermarks read *before* the
  executing snapshot, and a result is only cached when the pinned
  snapshot's TID covers every watermark component — a commit can publish
  its watermark bump (embedding hook) before ``last_tid``, so a worker
  may observe a post-commit watermark with a pre-commit snapshot; such
  results are served but never cached (see cache.py for the full
  interleaving analysis).
- **SLA path**: requests carrying ``max_staleness`` (maximum tolerated
  watermark-TID lag) or a read-your-writes ``session_token`` (a commit
  TID the serving snapshot must cover) take a dedicated pin/validate/
  re-pin loop: serve when the contract holds, wait (bounded by
  ``staleness_wait`` and the request deadline) when it does not, and fail
  with a typed :class:`~repro.errors.StalenessBoundError` when the budget
  runs out.  An SLA response is therefore never silently stale.
- **Tenant isolation**: the result cache is partitioned per tenant
  (:class:`~repro.serve.cache.ServeResultCache`) and tenants may carry a
  ``max_queue_share`` admission bound, so one tenant's flood can neither
  evict another's hot entries nor fill the shared queue.
- **Chaos hardening**: with a :class:`~repro.faults.FaultInjector`
  attached, injected worker crashes re-queue the in-flight batch (bounded
  by the policy's ``max_attempts``) and respawn a replacement worker;
  injected stalls delay one batch while other workers drain the queue;
  and a fused batch poisoned by injected segment faults degrades to
  per-query execution instead of failing every rider.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

import numpy as np

from ..core.search import (
    VectorSearchOptions,
    build_topk_vertex_set,
    vector_search_batch,
    vector_search_merged,
)
from ..core.service import EmbeddingStore
from ..errors import (
    AdmissionRejectedError,
    FaultInjectionError,
    QueryTimeoutError,
    RateLimitedError,
    ReproError,
    ServeError,
    StalenessBoundError,
)
from ..faults import FaultInjector, ResiliencePolicy
from ..telemetry import get_telemetry
from .admission import AdmissionController
from .batcher import MicroBatcher
from .cache import ResultCache, ServeResultCache
from .tenancy import Tenant, TenantRegistry, WeightedFairQueue

__all__ = ["QueryServer", "ServeConfig", "ServeFuture"]


@dataclass
class ServeConfig:
    """Serving knobs; defaults favor correctness-visible small deployments."""

    workers: int = 4
    max_queue_depth: int = 256
    enable_batching: bool = True
    batch_window_seconds: float = 0.002
    max_batch: int = 32
    min_fused: int = 4  # below this, a batch falls back to per-query HNSW
    enable_cache: bool = True
    cache_max_bytes: int = 32 << 20
    cache_max_entries: int = 1024
    #: Per-tenant cache partition bounds; None derives a quarter of the
    #: totals (see :class:`~repro.serve.cache.ServeResultCache`).
    cache_partition_max_bytes: int | None = None
    cache_partition_max_entries: int | None = None
    #: Per-request deadline (seconds from submit).  None defers to the
    #: resilience policy's deadline; both None means no deadline.
    default_timeout: float | None = None
    #: Staleness bound applied to requests that don't specify their own
    #: ``max_staleness`` (None = no default bound).
    default_max_staleness: int | None = None
    #: How long an SLA-bound request may wait (re-pinning snapshots) for
    #: its freshness contract before failing typed; the request deadline
    #: caps this further when sooner.
    staleness_wait: float = 0.05

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ServeError("workers must be at least 1")
        if self.max_batch < 1:
            raise ServeError("max_batch must be at least 1")
        if self.batch_window_seconds < 0:
            raise ServeError("batch_window_seconds must be non-negative")
        if self.default_timeout is not None and self.default_timeout <= 0:
            raise ServeError("default_timeout must be positive")
        if self.default_max_staleness is not None and self.default_max_staleness < 0:
            raise ServeError("default_max_staleness must be non-negative")
        if self.staleness_wait < 0:
            raise ServeError("staleness_wait must be non-negative")


class ServeFuture:
    """Completion handle for one submitted request."""

    __slots__ = ("_event", "_value", "_error")

    def __init__(self):
        self._event = threading.Event()
        self._value = None
        self._error: BaseException | None = None

    def done(self) -> bool:
        return self._event.is_set()

    def result(self, timeout: float | None = None):
        if not self._event.wait(timeout):
            raise ServeError("timed out waiting for the serve result")
        if self._error is not None:
            raise self._error
        return self._value

    def exception(self, timeout: float | None = None) -> BaseException | None:
        if not self._event.wait(timeout):
            raise ServeError("timed out waiting for the serve result")
        return self._error

    def _complete(self, value) -> None:
        self._value = value
        self._event.set()

    def _fail(self, error: BaseException) -> None:
        self._error = error
        self._event.set()


@dataclass
class QueryRequest:
    """Internal queue entry; one per submitted request."""

    kind: str  # "vector" | "gsql"
    tenant: Tenant
    future: ServeFuture
    submitted_at: float
    deadline: float | None
    vector_attributes: tuple[str, ...] = ()
    query: np.ndarray | None = None
    k: int = 0
    ef: int | None = None
    filter: object | None = None
    distance_map: object | None = None
    text: str = ""
    params: dict = field(default_factory=dict)
    no_cache: bool = False
    max_staleness: int | None = None
    session_token: int | None = None
    #: Execution attempts so far; bumped when a crashed worker's batch is
    #: re-queued, bounded by the resilience policy's ``max_attempts``.
    attempts: int = 0

    @property
    def sla_bound(self) -> bool:
        """True when the request carries a freshness/session contract."""
        return self.max_staleness is not None or self.session_token is not None

    def batch_key(self) -> tuple | None:
        """Fusion compatibility key; None means unbatchable.

        Filtered searches and tenants with restricted roles execute
        per-request (their validity masks differ per caller), and
        SLA-bound requests execute per-request too (each needs its own
        snapshot pin/validate/wait loop).  Everything else groups by
        ``(attributes, k, ef)``: default-``ef`` batches run the exact
        fused scan, and explicit-``ef`` batches run the lockstep fused
        HNSW kernel (:meth:`HNSWIndex.topk_search_multi` via
        :meth:`EmbeddingStore.search_segment_multi`), which honours the
        requested accuracy contract and returns results identical to the
        per-query path.
        """
        if (
            self.kind != "vector"
            or self.filter is not None
            or self.tenant.role != "admin"
            or self.sla_bound
        ):
            return None
        return (self.vector_attributes, self.k, self.ef)

    @property
    def cacheable(self) -> bool:
        """Cache eligibility; broader than fusion eligibility.

        ``ef`` is part of both the fusion key and the cache key, so an
        ``ef``-keyed entry is always produced at the requested accuracy —
        by the per-query kernel or the result-identical fused HNSW kernel.
        """
        return (
            self.kind == "vector"
            and self.filter is None
            and self.tenant.role == "admin"
            and not self.no_cache
        )


class QueryServer:
    """Worker pool serving vector and GSQL requests from a fair queue."""

    def __init__(
        self,
        db,
        config: ServeConfig | None = None,
        tenants=None,
        policy: ResiliencePolicy | None = None,
        injector: FaultInjector | None = None,
    ):
        self.db = db
        self.config = config or ServeConfig()
        self.registry = TenantRegistry(tenants)
        self.policy = policy if policy is not None else ResiliencePolicy()
        #: Optional chaos harness: when set, workers consult it at every
        #: dequeue for injected crashes/stalls (see ``repro.faults``).
        self.injector = injector
        self.queue = WeightedFairQueue(self.registry)
        self.admission = AdmissionController(self.registry, self.config.max_queue_depth)
        self.batcher = (
            MicroBatcher(
                self.queue, self.config.batch_window_seconds, self.config.max_batch
            )
            if self.config.enable_batching
            else None
        )
        self.cache = (
            ServeResultCache(
                self.config.cache_max_bytes,
                self.config.cache_max_entries,
                partition_max_bytes=self.config.cache_partition_max_bytes,
                partition_max_entries=self.config.cache_partition_max_entries,
            )
            if self.config.enable_cache
            else None
        )
        self._lifecycle_lock = threading.Lock()
        self._workers: list[threading.Thread] = []
        self._running = False
        self._stopped = False
        # Monotone dequeue ordinal feeding the fault injector's
        # worker-crash/stall schedule (1-based, like commit ordinals).
        self._dequeue_lock = threading.Lock()
        self._dequeues = 0
        self._worker_seq = 0

    # ------------------------------------------------------------ lifecycle
    def _make_worker(self, seq: int) -> threading.Thread:
        """Build (but do not register or start) one worker thread."""
        return threading.Thread(
            target=self._worker_loop, name=f"serve-worker-{seq}", daemon=True
        )

    def start(self) -> "QueryServer":
        with self._lifecycle_lock:
            if self._running:
                return self
            if self._stopped:
                raise ServeError("QueryServer cannot be restarted after stop()")
            self._running = True
            for _ in range(self.config.workers):
                worker = self._make_worker(self._worker_seq)
                self._worker_seq += 1
                self._workers.append(worker)
                worker.start()
        return self

    def stop(self) -> None:
        with self._lifecycle_lock:
            if self._stopped:
                return
            self._running = False
            self._stopped = True
            workers = list(self._workers)
            self._workers.clear()
        leftovers = self.queue.close()
        for request in leftovers:
            request.future._fail(
                AdmissionRejectedError(
                    "server shut down before the request ran", reason="shutdown"
                )
            )
        for worker in workers:
            worker.join()

    @property
    def running(self) -> bool:
        with self._lifecycle_lock:
            return self._running

    def __enter__(self) -> "QueryServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # --------------------------------------------------------------- submit
    def _effective_deadline(self, submitted_at: float, timeout: float | None):
        if timeout is None:
            timeout = self.config.default_timeout
        if timeout is None:
            timeout = self.policy.deadline
        return None if timeout is None else submitted_at + timeout

    def _submit(self, request: QueryRequest) -> ServeFuture:
        tel = get_telemetry()
        tel.inc("serve.requests")
        if not self.running:
            raise ServeError("QueryServer is not running; call start() first")
        try:
            self.admission.admit(
                request.tenant,
                self.queue.depth(),
                request.submitted_at,
                tenant_depth=self.queue.depth_for(request.tenant.name),
            )
        except RateLimitedError:
            tel.inc("serve.shed")
            tel.inc("serve.shed_rate_limited")
            raise
        except AdmissionRejectedError as exc:
            tel.inc("serve.shed")
            tel.inc(
                "serve.shed_tenant_share"
                if exc.reason == "tenant_share"
                else "serve.shed_queue_full"
            )
            raise
        depth = self.queue.put(request, request.tenant.name)
        tel.set_gauge("serve.queue_depth", depth)
        return request.future

    def submit_search(
        self,
        vector_attributes,
        query_vector,
        k: int,
        *,
        tenant: str = "default",
        ef: int | None = None,
        filter=None,
        distance_map=None,
        timeout: float | None = None,
        no_cache: bool = False,
        max_staleness: int | None = None,
        session_token: int | None = None,
    ) -> ServeFuture:
        """Queue a VectorSearch; returns a future (may raise a shed error).

        ``max_staleness`` bounds the watermark-TID lag of the serving
        snapshot (0 = insist on a snapshot covering every observed
        watermark); ``session_token`` is a commit TID (as returned by
        ``Transaction.commit`` / ``GraphStore.session_token``) the serving
        snapshot must cover — read-your-writes for the session that
        performed the commit.  Either makes the request SLA-bound: served
        fresh, or failed with :class:`~repro.errors.StalenessBoundError`;
        never silently stale.
        """
        tenant_obj = self.registry.get(tenant)
        submitted_at = time.monotonic()
        if max_staleness is None:
            max_staleness = self.config.default_max_staleness
        if max_staleness is not None and max_staleness < 0:
            raise ServeError("max_staleness must be non-negative")
        if session_token is not None and session_token < 0:
            raise ServeError("session_token must be a commit TID (>= 0)")
        request = QueryRequest(
            kind="vector",
            tenant=tenant_obj,
            future=ServeFuture(),
            submitted_at=submitted_at,
            deadline=self._effective_deadline(submitted_at, timeout),
            vector_attributes=tuple(vector_attributes),
            query=np.asarray(query_vector, dtype=np.float32).reshape(-1),
            k=int(k),
            ef=ef,
            filter=filter,
            distance_map=distance_map,
            no_cache=no_cache,
            max_staleness=max_staleness,
            session_token=session_token,
        )
        return self._submit(request)

    def submit_gsql(
        self,
        text: str,
        *,
        tenant: str = "default",
        timeout: float | None = None,
        params: dict | None = None,
    ) -> ServeFuture:
        """Queue a GSQL statement; read-only enforced per tenant."""
        tenant_obj = self.registry.get(tenant)
        submitted_at = time.monotonic()
        request = QueryRequest(
            kind="gsql",
            tenant=tenant_obj,
            future=ServeFuture(),
            submitted_at=submitted_at,
            deadline=self._effective_deadline(submitted_at, timeout),
            text=text,
            params=dict(params or {}),
        )
        return self._submit(request)

    def search(self, vector_attributes, query_vector, k: int, **kwargs):
        """Synchronous VectorSearch through the full serving pipeline."""
        return self.submit_search(vector_attributes, query_vector, k, **kwargs).result()

    def run_gsql(self, text: str, **kwargs):
        """Synchronous GSQL execution through the serving pipeline."""
        return self.submit_gsql(text, **kwargs).result()

    # -------------------------------------------------------------- workers
    def _worker_loop(self) -> None:
        tel = get_telemetry()
        while True:
            request = self.queue.take(timeout=0.1)
            if request is None:
                if self.queue.closed:
                    return
                continue
            injector = self.injector
            ordinal = 0
            if injector is not None:
                with self._dequeue_lock:
                    self._dequeues += 1
                    ordinal = self._dequeues
                stall = injector.worker_stall_seconds(ordinal)
                if stall > 0:
                    # Straggling worker: hold the dequeued request while the
                    # other workers keep draining the queue.  The stalled
                    # request completes late or fails typed at its deadline
                    # (_shed_expired) — never silently.
                    tel.inc("serve.worker_stalls")
                    time.sleep(stall)
            if self.batcher is not None:
                batch = self.batcher.collect(request)
            else:
                batch = [request]
            if injector is not None and injector.worker_crash_due(ordinal):
                # The worker dies with the batch in hand: re-queue every
                # member (bounded by the policy) and respawn a replacement
                # so capacity recovers.  This thread then exits = "crash".
                tel.inc("serve.worker_crashes")
                self._requeue_after_crash(batch)
                self._respawn_worker()
                return
            tel.inc("serve.batches")
            tel.observe("serve.batch_size", len(batch))
            self._execute_batch(batch)

    def _requeue_after_crash(self, batch: list) -> None:
        """Put a dead worker's in-flight requests back on the queue.

        Each request carries an attempt count; one that has already been
        through ``max_attempts`` workers fails typed instead of cycling
        forever through a crash-looping server.
        """
        tel = get_telemetry()
        for request in batch:
            request.attempts += 1
            if request.attempts >= self.policy.max_attempts:
                self._finish(
                    request,
                    error=FaultInjectionError(
                        f"request lost to {request.attempts} worker crash(es); "
                        f"retry budget exhausted"
                    ),
                )
                continue
            try:
                self.queue.put(request, request.tenant.name)
            except AdmissionRejectedError as exc:
                self._finish(request, error=exc)
                continue
            tel.inc("serve.worker_requeues")

    def _respawn_worker(self) -> None:
        with self._lifecycle_lock:
            if not self._running:
                return
            worker = self._make_worker(self._worker_seq)
            self._worker_seq += 1
            self._workers.append(worker)
            worker.start()
        get_telemetry().inc("serve.worker_respawns")

    def _finish(self, request: QueryRequest, value=None, error=None) -> None:
        if error is not None:
            request.future._fail(error)
        else:
            request.future._complete(value)
        tel = get_telemetry()
        tel.inc("serve.completed")
        tel.observe(
            "serve.latency_seconds", time.monotonic() - request.submitted_at
        )

    def _execute_batch(self, batch: list) -> None:
        try:
            live = self._shed_expired(batch)
            if not live:
                return
            if live[0].kind == "gsql":
                for request in live:
                    self._execute_gsql(request)
            elif live[0].sla_bound:
                # SLA-bound requests never fuse (batch_key is None), so
                # the batch is a singleton; each takes the dedicated
                # pin/validate/wait loop.
                for request in live:
                    self._execute_sla(request)
            else:
                self._execute_vector(live)
        except Exception as exc:
            # Defensive: an unexpected error must never strand a future
            # (acceptance: the server never hangs and never drops).
            for request in batch:
                if not request.future.done():
                    self._finish(request, error=exc)

    def _shed_expired(self, batch: list) -> list:
        """Deadline-aware shedding at dequeue: expired requests fail typed."""
        tel = get_telemetry()
        now = time.monotonic()
        live = []
        for request in batch:
            tel.observe("serve.queue_wait_seconds", now - request.submitted_at)
            if request.deadline is not None and now > request.deadline:
                tel.inc("serve.deadline_timeouts")
                elapsed = now - request.submitted_at
                self._finish(
                    request,
                    error=QueryTimeoutError(
                        f"request waited {elapsed:.3f}s in the serve queue, "
                        f"past its deadline",
                        deadline=request.deadline - request.submitted_at,
                        elapsed=elapsed,
                    ),
                )
            else:
                live.append(request)
        return live

    def _with_retries(self, fn):
        """Resilience dispatch: retry injected faults with policy backoff."""
        attempt = 0
        while True:
            try:
                return fn()
            except FaultInjectionError:
                attempt += 1
                if attempt >= self.policy.max_attempts:
                    raise
                get_telemetry().inc("resilience.retries")
                delay = self.policy.backoff(attempt - 1)
                if delay > 0:
                    time.sleep(delay)

    # ----------------------------------------------------------------- GSQL
    def _execute_gsql(self, request: QueryRequest) -> None:
        try:
            result = self._with_retries(
                lambda: self.db.gsql.run(
                    request.text,
                    readonly=not request.tenant.allow_writes,
                    **request.params,
                )
            )
        except ReproError as exc:
            self._finish(request, error=exc)
            return
        self._finish(request, value=result)

    # --------------------------------------------------------------- vector
    def _watermarks(self, vector_attributes: tuple[str, ...]) -> tuple:
        schema = self.db.schema
        marks = []
        for qualified in vector_attributes:
            vertex_type, _ = schema.embedding_attribute(qualified)
            store = self.db.service.store(
                vertex_type, qualified.split(".", 1)[1]
            )
            marks.append(store.watermark())
        return tuple(marks)

    def _execute_vector(self, batch: list) -> None:
        tel = get_telemetry()
        cache = self.cache
        watermarks = None
        if cache is not None and any(r.cacheable for r in batch):
            # Multi-request batches only form around a shared fusion key,
            # so every member has the leader's attribute set (singleton
            # batches trivially so) and one watermark tuple covers all.
            # Read watermarks BEFORE taking the snapshot (see cache.py).
            try:
                watermarks = self._watermarks(batch[0].vector_attributes)
            except ReproError as exc:
                for request in batch:
                    self._finish(request, error=exc)
                return

        pending: list[tuple[QueryRequest, tuple | None]] = []
        for request in batch:
            if watermarks is not None and request.cacheable:
                key = ResultCache.key(
                    request.vector_attributes,
                    request.query,
                    request.k,
                    request.ef,
                    watermarks,
                )
                hit = cache.get(request.tenant.name, key)
                if hit is not None:
                    tel.inc("serve.cache_hits")
                    self._finish(
                        request,
                        value=build_topk_vertex_set(
                            list(hit), request.distance_map
                        ),
                    )
                    continue
                tel.inc("serve.cache_misses")
                pending.append((request, key))
            else:
                pending.append((request, None))
        if not pending:
            return

        with self.db.snapshot() as snapshot:
            if watermarks is not None and any(
                EmbeddingStore.watermark_tid(mark) > snapshot.tid
                for mark in watermarks
            ):
                # A commit published its watermark bump (the embedding hook
                # runs inside the commit critical section) but not yet its
                # last_tid, so the key describes state this snapshot cannot
                # see.  Caching the result would serve a pre-commit top-k to
                # every post-commit lookup; serve it uncached instead.
                tel.inc("serve.cache_bypass_commit_race")
                pending = [(request, None) for request, _ in pending]
            fusable = [item for item in pending if item[0].batch_key() is not None]
            singles = [item for item in pending if item[0].batch_key() is None]
            if (
                self.batcher is not None
                and len(fusable) >= max(2, self.config.min_fused)
            ):
                self._execute_fused(fusable, snapshot)
            else:
                singles = fusable + singles
            for request, key in singles:
                self._execute_single(request, key, snapshot)

    # ------------------------------------------------------------ SLA path
    #: Snapshot re-pin cadence while waiting out a freshness violation.
    _SLA_RETRY_SLEEP = 0.0005

    def _execute_sla(self, request: QueryRequest) -> None:
        """Serve one staleness-bounded / read-your-writes request.

        Loop: read watermarks, pin a snapshot, validate the contract —
        ``watermark_tid`` lag within ``max_staleness``, snapshot TID
        covering ``session_token`` — then serve; otherwise release the
        snapshot and re-pin until the wait budget (``staleness_wait``,
        capped by the request deadline) runs out, at which point the
        request fails with a typed :class:`StalenessBoundError`.  The
        violation window is the mid-publication commit interleaving
        (embedding hooks fired, ``last_tid`` unpublished), so waits are
        normally a handful of re-pins.
        """
        tel = get_telemetry()
        started = time.monotonic()
        limit = started + self.config.staleness_wait
        if request.deadline is not None:
            limit = min(limit, request.deadline)
        while True:
            try:
                marks = self._watermarks(request.vector_attributes)
            except ReproError as exc:
                self._finish(request, error=exc)
                return
            stale = behind = False
            lag = 0
            with self.db.snapshot() as snapshot:
                lag = EmbeddingStore.watermark_lag(marks, snapshot.tid)
                stale = (
                    request.max_staleness is not None
                    and lag > request.max_staleness
                )
                behind = (
                    request.session_token is not None
                    and snapshot.tid < request.session_token
                )
                if not stale and not behind:
                    key = None
                    if request.cacheable and self.cache is not None:
                        if lag == 0:
                            # Same key discipline as the fast path: the
                            # snapshot covers every watermark component, so
                            # a hit is consistent and a fill is safe.
                            key = ResultCache.key(
                                request.vector_attributes,
                                request.query,
                                request.k,
                                request.ef,
                                marks,
                            )
                            hit = self.cache.get(request.tenant.name, key)
                            if hit is not None:
                                tel.inc("serve.cache_hits")
                                self._finish(
                                    request,
                                    value=build_topk_vertex_set(
                                        list(hit), request.distance_map
                                    ),
                                )
                                return
                            tel.inc("serve.cache_misses")
                        else:
                            # Tolerated nonzero lag (max_staleness > 0 over
                            # a mid-publication window): serve uncached,
                            # exactly like the commit-race bypass.
                            tel.inc("serve.cache_bypass_commit_race")
                    self._execute_single(request, key, snapshot)
                    return
            now = time.monotonic()
            if now >= limit:
                waited = now - started
                if behind:
                    tel.inc("serve.session_token_rejections")
                    self._finish(
                        request,
                        error=StalenessBoundError(
                            f"no snapshot covering session token "
                            f"{request.session_token} within {waited:.3f}s",
                            session_token=request.session_token,
                            waited=waited,
                        ),
                    )
                else:
                    tel.inc("serve.staleness_rejections")
                    self._finish(
                        request,
                        error=StalenessBoundError(
                            f"snapshot lag {lag} exceeds max_staleness "
                            f"{request.max_staleness} after {waited:.3f}s",
                            max_staleness=request.max_staleness,
                            lag=lag,
                            waited=waited,
                        ),
                    )
                return
            tel.inc(
                "serve.session_token_waits" if behind else "serve.staleness_waits"
            )
            time.sleep(min(self._SLA_RETRY_SLEEP, limit - now))

    def _execute_fused(self, fusable: list, snapshot) -> None:
        tel = get_telemetry()
        requests = [request for request, _ in fusable]
        leader = requests[0]
        queries = np.stack([request.query for request in requests])
        try:
            tops = self._with_retries(
                lambda: vector_search_batch(
                    self.db.service,
                    snapshot,
                    list(leader.vector_attributes),
                    queries,
                    leader.k,
                    ef=leader.ef,
                    min_fused=2,  # the batcher already decided to fuse
                )
            )
        except FaultInjectionError:
            # Poisoned fused batch: one injected segment fault survived the
            # retry budget.  Degrade to per-query execution on the same
            # snapshot so one bad scan cannot fail every rider — each
            # single retries independently and, at worst, fails typed.
            tel.inc("serve.batch_poison_degrades")
            for request, key in fusable:
                self._execute_single(request, key, snapshot)
            return
        except ReproError as exc:
            for request in requests:
                self._finish(request, error=exc)
            return
        tel.inc("serve.fused_queries", len(requests))
        # Distinguish the two fused kernels in cache introspection: the
        # exact batch scan vs the lockstep fused HNSW traversal.
        kernel = "fused-hnsw" if leader.ef is not None else "fused"
        evictions = 0
        for (request, key), top in zip(fusable, tops):
            if key is not None and self.cache is not None:
                evictions += self.cache.put(
                    request.tenant.name, key, tuple(top), kernel=kernel
                )
            self._finish(
                request, value=build_topk_vertex_set(top, request.distance_map)
            )
        if evictions:
            tel.inc("serve.cache_evictions", evictions)

    def _execute_single(self, request: QueryRequest, key, snapshot) -> None:
        tel = get_telemetry()
        try:
            if request.tenant.role != "admin":
                # Tenant-scoped view: route through RBAC-filtered search.
                # It pins its own snapshot and is never cached or fused.
                value = self._with_retries(
                    lambda: self.db.access.authorized_search(
                        request.tenant.role,
                        list(request.vector_attributes),
                        request.query,
                        request.k,
                        filter=request.filter,
                        ef=request.ef,
                    )
                )
                self._finish(request, value=value)
                return
            options = VectorSearchOptions(
                filter=request.filter, distance_map=None, ef=request.ef
            )
            top = self._with_retries(
                lambda: vector_search_merged(
                    self.db.service,
                    snapshot,
                    list(request.vector_attributes),
                    request.query,
                    request.k,
                    options,
                )
            )
        except ReproError as exc:
            self._finish(request, error=exc)
            return
        if key is not None and self.cache is not None:
            evicted = self.cache.put(
                request.tenant.name, key, tuple(top), kernel="hnsw"
            )
            if evicted:
                tel.inc("serve.cache_evictions", evicted)
        self._finish(
            request, value=build_topk_vertex_set(top, request.distance_map)
        )

    # ---------------------------------------------------------------- stats
    def stats(self) -> dict:
        tier = getattr(self.db, "tier_manager", None)
        with self._lifecycle_lock:
            # Configured size vs what actually survives: crashed workers
            # stay in the registration list as dead threads, so the live
            # count is the real capacity (respawns keep it at target).
            workers_alive = sum(
                1 for worker in self._workers if worker.is_alive()
            )
        return {
            "running": self.running,
            "workers": self.config.workers,
            "workers_alive": workers_alive,
            "queue_depth": self.queue.depth(),
            "tenants": sorted(self.registry.names()),
            "batching": self.batcher is not None,
            "cache": None if self.cache is None else self.cache.stats(),
            "tier": None if tier is None else tier.stats_snapshot(),
        }
