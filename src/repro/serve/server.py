"""The concurrent multi-tenant query server.

Request lifecycle::

    submit -> admission (bounded queue, token bucket)      [typed shed]
           -> weighted-fair queue                           [per-tenant]
           -> worker dequeue -> deadline check              [typed timeout]
           -> micro-batch collection (batcher.py)
           -> result cache lookup (cache.py, MVCC-watermark keys)
           -> fused batch scan or per-query VectorSearch on one snapshot
           -> future completion + telemetry

Correctness contracts:

- **Byte identity**: with batching and caching disabled, every answer is
  produced by the same ``vector_search_merged`` + ``build_topk_vertex_set``
  pipeline (same snapshot semantics, same tie-breaking, same distance-map
  fills) as a direct :meth:`TigerVectorDB.vector_search` call; GSQL goes
  through the same :meth:`GSQLSession.run`.
- **Never hangs, never drops**: every accepted request's future is
  completed — with a result, or with a typed :class:`ReproError`
  (``QueryTimeoutError`` for deadline misses, ``AdmissionRejectedError``
  with ``reason='shutdown'`` for requests drained at stop).
- **Freshness**: cache keys embed store watermarks read *before* the
  executing snapshot, and a result is only cached when the pinned
  snapshot's TID covers every watermark component — a commit can publish
  its watermark bump (embedding hook) before ``last_tid``, so a worker
  may observe a post-commit watermark with a pre-commit snapshot; such
  results are served but never cached (see cache.py for the full
  interleaving analysis).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

import numpy as np

from ..core.search import (
    VectorSearchOptions,
    build_topk_vertex_set,
    vector_search_batch,
    vector_search_merged,
)
from ..core.service import EmbeddingStore
from ..errors import (
    AdmissionRejectedError,
    FaultInjectionError,
    QueryTimeoutError,
    RateLimitedError,
    ReproError,
    ServeError,
)
from ..faults import ResiliencePolicy
from ..telemetry import get_telemetry
from .admission import AdmissionController
from .batcher import MicroBatcher
from .cache import ResultCache
from .tenancy import Tenant, TenantRegistry, WeightedFairQueue

__all__ = ["QueryServer", "ServeConfig", "ServeFuture"]


@dataclass
class ServeConfig:
    """Serving knobs; defaults favor correctness-visible small deployments."""

    workers: int = 4
    max_queue_depth: int = 256
    enable_batching: bool = True
    batch_window_seconds: float = 0.002
    max_batch: int = 32
    min_fused: int = 4  # below this, a batch falls back to per-query HNSW
    enable_cache: bool = True
    cache_max_bytes: int = 32 << 20
    cache_max_entries: int = 1024
    #: Per-request deadline (seconds from submit).  None defers to the
    #: resilience policy's deadline; both None means no deadline.
    default_timeout: float | None = None

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ServeError("workers must be at least 1")
        if self.max_batch < 1:
            raise ServeError("max_batch must be at least 1")
        if self.batch_window_seconds < 0:
            raise ServeError("batch_window_seconds must be non-negative")
        if self.default_timeout is not None and self.default_timeout <= 0:
            raise ServeError("default_timeout must be positive")


class ServeFuture:
    """Completion handle for one submitted request."""

    __slots__ = ("_event", "_value", "_error")

    def __init__(self):
        self._event = threading.Event()
        self._value = None
        self._error: BaseException | None = None

    def done(self) -> bool:
        return self._event.is_set()

    def result(self, timeout: float | None = None):
        if not self._event.wait(timeout):
            raise ServeError("timed out waiting for the serve result")
        if self._error is not None:
            raise self._error
        return self._value

    def exception(self, timeout: float | None = None) -> BaseException | None:
        if not self._event.wait(timeout):
            raise ServeError("timed out waiting for the serve result")
        return self._error

    def _complete(self, value) -> None:
        self._value = value
        self._event.set()

    def _fail(self, error: BaseException) -> None:
        self._error = error
        self._event.set()


@dataclass
class QueryRequest:
    """Internal queue entry; one per submitted request."""

    kind: str  # "vector" | "gsql"
    tenant: Tenant
    future: ServeFuture
    submitted_at: float
    deadline: float | None
    vector_attributes: tuple[str, ...] = ()
    query: np.ndarray | None = None
    k: int = 0
    ef: int | None = None
    filter: object | None = None
    distance_map: object | None = None
    text: str = ""
    params: dict = field(default_factory=dict)
    no_cache: bool = False

    def batch_key(self) -> tuple | None:
        """Fusion compatibility key; None means unbatchable.

        Filtered searches and tenants with restricted roles execute
        per-request (their validity masks differ per caller).  Everything
        else groups by ``(attributes, k, ef)``: default-``ef`` batches run
        the exact fused scan, and explicit-``ef`` batches run the lockstep
        fused HNSW kernel (:meth:`HNSWIndex.topk_search_multi` via
        :meth:`EmbeddingStore.search_segment_multi`), which honours the
        requested accuracy contract and returns results identical to the
        per-query path.
        """
        if (
            self.kind != "vector"
            or self.filter is not None
            or self.tenant.role != "admin"
        ):
            return None
        return (self.vector_attributes, self.k, self.ef)

    @property
    def cacheable(self) -> bool:
        """Cache eligibility; broader than fusion eligibility.

        ``ef`` is part of both the fusion key and the cache key, so an
        ``ef``-keyed entry is always produced at the requested accuracy —
        by the per-query kernel or the result-identical fused HNSW kernel.
        """
        return (
            self.kind == "vector"
            and self.filter is None
            and self.tenant.role == "admin"
            and not self.no_cache
        )


class QueryServer:
    """Worker pool serving vector and GSQL requests from a fair queue."""

    def __init__(
        self,
        db,
        config: ServeConfig | None = None,
        tenants=None,
        policy: ResiliencePolicy | None = None,
    ):
        self.db = db
        self.config = config or ServeConfig()
        self.registry = TenantRegistry(tenants)
        self.policy = policy if policy is not None else ResiliencePolicy()
        self.queue = WeightedFairQueue(self.registry)
        self.admission = AdmissionController(self.registry, self.config.max_queue_depth)
        self.batcher = (
            MicroBatcher(
                self.queue, self.config.batch_window_seconds, self.config.max_batch
            )
            if self.config.enable_batching
            else None
        )
        self.cache = (
            ResultCache(self.config.cache_max_bytes, self.config.cache_max_entries)
            if self.config.enable_cache
            else None
        )
        self._lifecycle_lock = threading.Lock()
        self._workers: list[threading.Thread] = []
        self._running = False
        self._stopped = False

    # ------------------------------------------------------------ lifecycle
    def start(self) -> "QueryServer":
        with self._lifecycle_lock:
            if self._running:
                return self
            if self._stopped:
                raise ServeError("QueryServer cannot be restarted after stop()")
            self._running = True
            for i in range(self.config.workers):
                worker = threading.Thread(
                    target=self._worker_loop, name=f"serve-worker-{i}", daemon=True
                )
                self._workers.append(worker)
                worker.start()
        return self

    def stop(self) -> None:
        with self._lifecycle_lock:
            if self._stopped:
                return
            self._running = False
            self._stopped = True
            workers = list(self._workers)
            self._workers.clear()
        leftovers = self.queue.close()
        for request in leftovers:
            request.future._fail(
                AdmissionRejectedError(
                    "server shut down before the request ran", reason="shutdown"
                )
            )
        for worker in workers:
            worker.join()

    @property
    def running(self) -> bool:
        with self._lifecycle_lock:
            return self._running

    def __enter__(self) -> "QueryServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # --------------------------------------------------------------- submit
    def _effective_deadline(self, submitted_at: float, timeout: float | None):
        if timeout is None:
            timeout = self.config.default_timeout
        if timeout is None:
            timeout = self.policy.deadline
        return None if timeout is None else submitted_at + timeout

    def _submit(self, request: QueryRequest) -> ServeFuture:
        tel = get_telemetry()
        tel.inc("serve.requests")
        if not self.running:
            raise ServeError("QueryServer is not running; call start() first")
        try:
            self.admission.admit(
                request.tenant, self.queue.depth(), request.submitted_at
            )
        except RateLimitedError:
            tel.inc("serve.shed")
            tel.inc("serve.shed_rate_limited")
            raise
        except AdmissionRejectedError:
            tel.inc("serve.shed")
            tel.inc("serve.shed_queue_full")
            raise
        depth = self.queue.put(request, request.tenant.name)
        tel.set_gauge("serve.queue_depth", depth)
        return request.future

    def submit_search(
        self,
        vector_attributes,
        query_vector,
        k: int,
        *,
        tenant: str = "default",
        ef: int | None = None,
        filter=None,
        distance_map=None,
        timeout: float | None = None,
        no_cache: bool = False,
    ) -> ServeFuture:
        """Queue a VectorSearch; returns a future (may raise a shed error)."""
        tenant_obj = self.registry.get(tenant)
        submitted_at = time.monotonic()
        request = QueryRequest(
            kind="vector",
            tenant=tenant_obj,
            future=ServeFuture(),
            submitted_at=submitted_at,
            deadline=self._effective_deadline(submitted_at, timeout),
            vector_attributes=tuple(vector_attributes),
            query=np.asarray(query_vector, dtype=np.float32).reshape(-1),
            k=int(k),
            ef=ef,
            filter=filter,
            distance_map=distance_map,
            no_cache=no_cache,
        )
        return self._submit(request)

    def submit_gsql(
        self,
        text: str,
        *,
        tenant: str = "default",
        timeout: float | None = None,
        params: dict | None = None,
    ) -> ServeFuture:
        """Queue a GSQL statement; read-only enforced per tenant."""
        tenant_obj = self.registry.get(tenant)
        submitted_at = time.monotonic()
        request = QueryRequest(
            kind="gsql",
            tenant=tenant_obj,
            future=ServeFuture(),
            submitted_at=submitted_at,
            deadline=self._effective_deadline(submitted_at, timeout),
            text=text,
            params=dict(params or {}),
        )
        return self._submit(request)

    def search(self, vector_attributes, query_vector, k: int, **kwargs):
        """Synchronous VectorSearch through the full serving pipeline."""
        return self.submit_search(vector_attributes, query_vector, k, **kwargs).result()

    def run_gsql(self, text: str, **kwargs):
        """Synchronous GSQL execution through the serving pipeline."""
        return self.submit_gsql(text, **kwargs).result()

    # -------------------------------------------------------------- workers
    def _worker_loop(self) -> None:
        tel = get_telemetry()
        while True:
            request = self.queue.take(timeout=0.1)
            if request is None:
                if self.queue.closed:
                    return
                continue
            if self.batcher is not None:
                batch = self.batcher.collect(request)
            else:
                batch = [request]
            tel.inc("serve.batches")
            tel.observe("serve.batch_size", len(batch))
            self._execute_batch(batch)

    def _finish(self, request: QueryRequest, value=None, error=None) -> None:
        if error is not None:
            request.future._fail(error)
        else:
            request.future._complete(value)
        tel = get_telemetry()
        tel.inc("serve.completed")
        tel.observe(
            "serve.latency_seconds", time.monotonic() - request.submitted_at
        )

    def _execute_batch(self, batch: list) -> None:
        try:
            live = self._shed_expired(batch)
            if not live:
                return
            if live[0].kind == "gsql":
                for request in live:
                    self._execute_gsql(request)
            else:
                self._execute_vector(live)
        except Exception as exc:
            # Defensive: an unexpected error must never strand a future
            # (acceptance: the server never hangs and never drops).
            for request in batch:
                if not request.future.done():
                    self._finish(request, error=exc)

    def _shed_expired(self, batch: list) -> list:
        """Deadline-aware shedding at dequeue: expired requests fail typed."""
        tel = get_telemetry()
        now = time.monotonic()
        live = []
        for request in batch:
            tel.observe("serve.queue_wait_seconds", now - request.submitted_at)
            if request.deadline is not None and now > request.deadline:
                tel.inc("serve.deadline_timeouts")
                elapsed = now - request.submitted_at
                self._finish(
                    request,
                    error=QueryTimeoutError(
                        f"request waited {elapsed:.3f}s in the serve queue, "
                        f"past its deadline",
                        deadline=request.deadline - request.submitted_at,
                        elapsed=elapsed,
                    ),
                )
            else:
                live.append(request)
        return live

    def _with_retries(self, fn):
        """Resilience dispatch: retry injected faults with policy backoff."""
        attempt = 0
        while True:
            try:
                return fn()
            except FaultInjectionError:
                attempt += 1
                if attempt >= self.policy.max_attempts:
                    raise
                get_telemetry().inc("resilience.retries")
                delay = self.policy.backoff(attempt - 1)
                if delay > 0:
                    time.sleep(delay)

    # ----------------------------------------------------------------- GSQL
    def _execute_gsql(self, request: QueryRequest) -> None:
        try:
            result = self._with_retries(
                lambda: self.db.gsql.run(
                    request.text,
                    readonly=not request.tenant.allow_writes,
                    **request.params,
                )
            )
        except ReproError as exc:
            self._finish(request, error=exc)
            return
        self._finish(request, value=result)

    # --------------------------------------------------------------- vector
    def _watermarks(self, vector_attributes: tuple[str, ...]) -> tuple:
        schema = self.db.schema
        marks = []
        for qualified in vector_attributes:
            vertex_type, _ = schema.embedding_attribute(qualified)
            store = self.db.service.store(
                vertex_type, qualified.split(".", 1)[1]
            )
            marks.append(store.watermark())
        return tuple(marks)

    def _execute_vector(self, batch: list) -> None:
        tel = get_telemetry()
        cache = self.cache
        watermarks = None
        if cache is not None and any(r.cacheable for r in batch):
            # Multi-request batches only form around a shared fusion key,
            # so every member has the leader's attribute set (singleton
            # batches trivially so) and one watermark tuple covers all.
            # Read watermarks BEFORE taking the snapshot (see cache.py).
            try:
                watermarks = self._watermarks(batch[0].vector_attributes)
            except ReproError as exc:
                for request in batch:
                    self._finish(request, error=exc)
                return

        pending: list[tuple[QueryRequest, tuple | None]] = []
        for request in batch:
            if watermarks is not None and request.cacheable:
                key = ResultCache.key(
                    request.vector_attributes,
                    request.query,
                    request.k,
                    request.ef,
                    watermarks,
                )
                hit = cache.get(key)
                if hit is not None:
                    tel.inc("serve.cache_hits")
                    self._finish(
                        request,
                        value=build_topk_vertex_set(
                            list(hit), request.distance_map
                        ),
                    )
                    continue
                tel.inc("serve.cache_misses")
                pending.append((request, key))
            else:
                pending.append((request, None))
        if not pending:
            return

        with self.db.snapshot() as snapshot:
            if watermarks is not None and any(
                EmbeddingStore.watermark_tid(mark) > snapshot.tid
                for mark in watermarks
            ):
                # A commit published its watermark bump (the embedding hook
                # runs inside the commit critical section) but not yet its
                # last_tid, so the key describes state this snapshot cannot
                # see.  Caching the result would serve a pre-commit top-k to
                # every post-commit lookup; serve it uncached instead.
                tel.inc("serve.cache_bypass_commit_race")
                pending = [(request, None) for request, _ in pending]
            fusable = [item for item in pending if item[0].batch_key() is not None]
            singles = [item for item in pending if item[0].batch_key() is None]
            if (
                self.batcher is not None
                and len(fusable) >= max(2, self.config.min_fused)
            ):
                self._execute_fused(fusable, snapshot)
            else:
                singles = fusable + singles
            for request, key in singles:
                self._execute_single(request, key, snapshot)

    def _execute_fused(self, fusable: list, snapshot) -> None:
        tel = get_telemetry()
        requests = [request for request, _ in fusable]
        leader = requests[0]
        queries = np.stack([request.query for request in requests])
        try:
            tops = self._with_retries(
                lambda: vector_search_batch(
                    self.db.service,
                    snapshot,
                    list(leader.vector_attributes),
                    queries,
                    leader.k,
                    ef=leader.ef,
                    min_fused=2,  # the batcher already decided to fuse
                )
            )
        except ReproError as exc:
            for request in requests:
                self._finish(request, error=exc)
            return
        tel.inc("serve.fused_queries", len(requests))
        # Distinguish the two fused kernels in cache introspection: the
        # exact batch scan vs the lockstep fused HNSW traversal.
        kernel = "fused-hnsw" if leader.ef is not None else "fused"
        evictions = 0
        for (request, key), top in zip(fusable, tops):
            if key is not None and self.cache is not None:
                evictions += self.cache.put(key, tuple(top), kernel=kernel)
            self._finish(
                request, value=build_topk_vertex_set(top, request.distance_map)
            )
        if evictions:
            tel.inc("serve.cache_evictions", evictions)

    def _execute_single(self, request: QueryRequest, key, snapshot) -> None:
        tel = get_telemetry()
        try:
            if request.tenant.role != "admin":
                # Tenant-scoped view: route through RBAC-filtered search.
                # It pins its own snapshot and is never cached or fused.
                value = self._with_retries(
                    lambda: self.db.access.authorized_search(
                        request.tenant.role,
                        list(request.vector_attributes),
                        request.query,
                        request.k,
                        filter=request.filter,
                        ef=request.ef,
                    )
                )
                self._finish(request, value=value)
                return
            options = VectorSearchOptions(
                filter=request.filter, distance_map=None, ef=request.ef
            )
            top = self._with_retries(
                lambda: vector_search_merged(
                    self.db.service,
                    snapshot,
                    list(request.vector_attributes),
                    request.query,
                    request.k,
                    options,
                )
            )
        except ReproError as exc:
            self._finish(request, error=exc)
            return
        if key is not None and self.cache is not None:
            evicted = self.cache.put(key, tuple(top), kernel="hnsw")
            if evicted:
                tel.inc("serve.cache_evictions", evicted)
        self._finish(
            request, value=build_topk_vertex_set(top, request.distance_map)
        )

    # ---------------------------------------------------------------- stats
    def stats(self) -> dict:
        return {
            "running": self.running,
            "workers": self.config.workers,
            "queue_depth": self.queue.depth(),
            "tenants": sorted(self.registry.names()),
            "batching": self.batcher is not None,
            "cache": None if self.cache is None else self.cache.stats(),
        }
