"""Dynamic micro-batching: coalesce compatible requests into one scan.

After a worker dequeues a batchable request (the *leader*), it keeps
draining queue fronts with the same batch key — identical attribute set,
k, and ef; no filter; full-access tenant — until the batch is full or the
collection window closes.  The window only costs latency when there is
something to wait for: an already-full queue batches instantly, and a lone
request on an idle server waits at most ``window_seconds``.

The fused batch then runs through
:func:`repro.core.search.vector_search_batch`, which scans each segment
once for all queries (exact brute force, so recall never drops below the
per-query HNSW path); batches below the server's ``min_fused`` execute
per-query anyway.
"""

from __future__ import annotations

import time

from .tenancy import WeightedFairQueue

__all__ = ["MicroBatcher"]

#: Upper bound on one condition-wait inside the window, so a stream of
#: non-matching arrivals cannot pin the worker past the deadline.
_MAX_WAIT_SLICE = 0.0005


class MicroBatcher:
    """Collect same-key requests from the queue within a time/size window."""

    def __init__(
        self,
        queue: WeightedFairQueue,
        window_seconds: float = 0.002,
        max_batch: int = 32,
    ):
        self.queue = queue
        self.window_seconds = float(window_seconds)
        self.max_batch = int(max_batch)

    def collect(self, leader) -> list:
        """The leader plus any compatible requests arriving in the window."""
        batch = [leader]
        key = leader.batch_key()
        if key is None or self.max_batch <= 1:
            return batch
        deadline = time.monotonic() + self.window_seconds
        while len(batch) < self.max_batch:
            matched = self.queue.drain_matching(
                lambda request: request.batch_key() == key,
                self.max_batch - len(batch),
            )
            batch.extend(matched)
            if len(batch) >= self.max_batch:
                break
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            if not matched:
                self.queue.wait_for_item(min(remaining, _MAX_WAIT_SLICE))
        return batch
