"""Dynamic micro-batching: coalesce compatible requests into one scan.

After a worker dequeues a batchable request (the *leader*), it keeps
draining queue fronts with the same batch key — identical attribute set,
k, and ef; no filter; full-access tenant — until the batch is full or the
collection window closes.  The window only costs latency when there is
something to wait for: an already-full queue batches instantly, and a
lone request on an idle server waits at most ``window_seconds``.
Re-scans are driven by the queue's put counter, so fronts are only
re-examined after a *new arrival* — a queue holding only incompatible
requests parks the worker in one blocking wait instead of spinning
drain/check cycles for the rest of the window.

The fused batch then runs through
:func:`repro.core.search.vector_search_batch`, which visits each segment
once for all queries: default-``ef`` batches use the exact batch scan
(recall never drops below the per-query HNSW path), explicit-``ef``
batches use the lockstep fused HNSW kernel (results identical to the
per-query path); batches below the server's ``min_fused`` execute
per-query anyway.
"""

from __future__ import annotations

import time

from .tenancy import WeightedFairQueue

__all__ = ["MicroBatcher"]


class MicroBatcher:
    """Collect same-key requests from the queue within a time/size window."""

    def __init__(
        self,
        queue: WeightedFairQueue,
        window_seconds: float = 0.002,
        max_batch: int = 32,
    ):
        self.queue = queue
        self.window_seconds = float(window_seconds)
        self.max_batch = int(max_batch)

    def collect(self, leader) -> list:
        """The leader plus any compatible requests arriving in the window."""
        batch = [leader]
        key = leader.batch_key()
        if key is None or self.max_batch <= 1:
            return batch
        deadline = time.monotonic() + self.window_seconds
        # Never let batch collection eat the leader's own deadline: a
        # request due sooner than the window closes collection early and
        # executes with whatever riders are already there.
        leader_deadline = getattr(leader, "deadline", None)
        if leader_deadline is not None:
            deadline = min(deadline, leader_deadline)
        while len(batch) < self.max_batch:
            # Read the arrival counter BEFORE draining: a put landing
            # between the drain and the wait then wakes the wait
            # immediately instead of being missed for a whole slice.
            seen = self.queue.put_sequence()
            matched = self.queue.drain_matching(
                lambda request: request.batch_key() == key,
                self.max_batch - len(batch),
            )
            batch.extend(matched)
            if len(batch) >= self.max_batch:
                break
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            if not matched:
                self.queue.wait_for_put(seen, remaining)
        return batch
