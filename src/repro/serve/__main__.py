"""``python -m repro.serve`` — the serving demo CLI."""

import sys

from .cli import main

sys.exit(main())
