"""repro.serve — the concurrent multi-tenant query-serving layer.

Turns the single-caller engine into a traffic-facing server (the paper's
Sec. 6.3 throughput setting, plus the production-RAG gaps — freshness,
multi-tenancy, QoS — called out by the unified-data-layer paper in
PAPERS.md):

- :class:`QueryServer` — a worker thread pool executing ``VectorSearch()``
  and GSQL statements against live MVCC snapshots;
- :class:`MicroBatcher` — coalesces concurrent same-attribute top-k
  requests within a small time/size window into one fused multi-query
  segment scan (:func:`repro.core.search.vector_search_batch`);
- :class:`ResultCache` / :class:`ServeResultCache` — an LRU, byte-bounded
  result cache keyed by the MVCC watermark of every touched store (so
  commits and vacuum merges invalidate stale entries by construction),
  partitioned per tenant so one tenant's flood cannot evict another's hot
  entries;
- :class:`AdmissionController` / :class:`TokenBucket` /
  :class:`WeightedFairQueue` — bounded queues with deadline-aware
  shedding, per-tenant rate limits and queue shares, and weighted-fair
  scheduling.

The server also exposes a freshness SLA: requests may carry
``max_staleness`` (bounded watermark-TID lag) or a read-your-writes
``session_token`` (a commit TID the serving snapshot must cover) and are
served fresh, or failed with a typed
:class:`~repro.errors.StalenessBoundError` — never silently stale.
"""

from .admission import AdmissionController, TokenBucket
from .batcher import MicroBatcher
from .cache import ResultCache, ServeResultCache
from .server import QueryServer, ServeConfig, ServeFuture
from .tenancy import Tenant, TenantRegistry, WeightedFairQueue

__all__ = [
    "AdmissionController",
    "MicroBatcher",
    "QueryServer",
    "ResultCache",
    "ServeConfig",
    "ServeFuture",
    "ServeResultCache",
    "Tenant",
    "TenantRegistry",
    "TokenBucket",
    "WeightedFairQueue",
]
