"""repro.serve — the concurrent multi-tenant query-serving layer.

Turns the single-caller engine into a traffic-facing server (the paper's
Sec. 6.3 throughput setting, plus the production-RAG gaps — freshness,
multi-tenancy, QoS — called out by the unified-data-layer paper in
PAPERS.md):

- :class:`QueryServer` — a worker thread pool executing ``VectorSearch()``
  and GSQL statements against live MVCC snapshots;
- :class:`MicroBatcher` — coalesces concurrent same-attribute top-k
  requests within a small time/size window into one fused multi-query
  segment scan (:func:`repro.core.search.vector_search_batch`);
- :class:`ResultCache` — an LRU, byte-bounded result cache keyed by the
  MVCC watermark of every touched store, so commits and vacuum merges
  invalidate stale entries by construction;
- :class:`AdmissionController` / :class:`TokenBucket` /
  :class:`WeightedFairQueue` — bounded queues with deadline-aware
  shedding, per-tenant rate limits, and weighted-fair scheduling.
"""

from .admission import AdmissionController, TokenBucket
from .batcher import MicroBatcher
from .cache import ResultCache
from .server import QueryServer, ServeConfig, ServeFuture
from .tenancy import Tenant, TenantRegistry, WeightedFairQueue

__all__ = [
    "AdmissionController",
    "MicroBatcher",
    "QueryServer",
    "ResultCache",
    "ServeConfig",
    "ServeFuture",
    "Tenant",
    "TenantRegistry",
    "TokenBucket",
    "WeightedFairQueue",
]
