"""Property-graph schema and catalog.

Mirrors TigerGraph's DDL surface as used in the paper:

- ``CREATE VERTEX Post (id INT PRIMARY KEY, author STRING, content STRING)``
- ``CREATE DIRECTED EDGE knows (FROM Person, TO Person)``
- ``ALTER VERTEX Post ADD EMBEDDING ATTRIBUTE content_emb (DIMENSION=...,
  MODEL=..., INDEX=..., DATATYPE=..., METRIC=...)``
- ``CREATE EMBEDDING SPACE ... `` / ``ADD EMBEDDING ATTRIBUTE ... IN
  EMBEDDING SPACE ...``

The schema is a pure catalog: storage is handled by
:class:`repro.graph.storage.GraphStore`, which consults the schema for
attribute layouts and embedding metadata.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

from ..core.embedding import EmbeddingSpace, EmbeddingType
from ..errors import SchemaError, UnknownTypeError
from ..types import AttrType, DataType, IndexType, Metric

__all__ = ["Attribute", "EdgeType", "GraphSchema", "VertexType"]

_DEFAULTS = {
    AttrType.INT: 0,
    AttrType.UINT: 0,
    AttrType.FLOAT: 0.0,
    AttrType.DOUBLE: 0.0,
    AttrType.BOOL: False,
    AttrType.STRING: "",
    AttrType.DATETIME: 0,
    AttrType.LIST_FLOAT: (),
    AttrType.LIST_INT: (),
}


@dataclass(frozen=True)
class Attribute:
    """An ordinary (non-embedding) vertex or edge attribute."""

    name: str
    attr_type: AttrType
    primary_key: bool = False

    @property
    def default(self):
        return _DEFAULTS[self.attr_type]


class VertexType:
    """A vertex type: named attributes, one primary key, embedding attributes."""

    def __init__(self, name: str, attributes: Iterable[Attribute]):
        self.name = name
        self.attributes: dict[str, Attribute] = {}
        self.primary_key: str | None = None
        for attr in attributes:
            if attr.name in self.attributes:
                raise SchemaError(f"duplicate attribute '{attr.name}' on vertex '{name}'")
            self.attributes[attr.name] = attr
            if attr.primary_key:
                if self.primary_key is not None:
                    raise SchemaError(f"vertex '{name}' declares multiple primary keys")
                self.primary_key = attr.name
        if self.primary_key is None:
            raise SchemaError(f"vertex '{name}' must declare a PRIMARY KEY attribute")
        self.embeddings: dict[str, EmbeddingType] = {}

    def add_embedding(self, embedding: EmbeddingType) -> None:
        if embedding.name in self.attributes or embedding.name in self.embeddings:
            raise SchemaError(
                f"vertex '{self.name}' already has an attribute named '{embedding.name}'"
            )
        self.embeddings[embedding.name] = embedding

    def has_attribute(self, name: str) -> bool:
        return name in self.attributes or name in self.embeddings

    def attribute(self, name: str) -> Attribute:
        try:
            return self.attributes[name]
        except KeyError:
            raise UnknownTypeError(
                f"vertex '{self.name}' has no attribute '{name}'"
            ) from None

    def embedding(self, name: str) -> EmbeddingType:
        try:
            return self.embeddings[name]
        except KeyError:
            raise UnknownTypeError(
                f"vertex '{self.name}' has no embedding attribute '{name}'"
            ) from None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"VertexType({self.name}, attrs={list(self.attributes)}, emb={list(self.embeddings)})"


class EdgeType:
    """An edge type with fixed endpoint vertex types.

    TigerGraph supports both directed and undirected edges; undirected edges
    are stored as two directed half-edges by the storage layer.
    """

    def __init__(
        self,
        name: str,
        from_type: str,
        to_type: str,
        directed: bool = True,
        attributes: Iterable[Attribute] = (),
    ):
        self.name = name
        self.from_type = from_type
        self.to_type = to_type
        self.directed = directed
        self.attributes: dict[str, Attribute] = {}
        for attr in attributes:
            if attr.primary_key:
                raise SchemaError(f"edge '{name}': edges cannot declare primary keys")
            if attr.name in self.attributes:
                raise SchemaError(f"duplicate attribute '{attr.name}' on edge '{name}'")
            self.attributes[attr.name] = attr

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        arrow = "->" if self.directed else "--"
        return f"EdgeType({self.from_type}{arrow}{self.to_type}:{self.name})"


class GraphSchema:
    """The catalog: vertex types, edge types, and embedding spaces."""

    def __init__(self, name: str = "g"):
        self.name = name
        self.vertex_types: dict[str, VertexType] = {}
        self.edge_types: dict[str, EdgeType] = {}
        self.embedding_spaces: dict[str, EmbeddingSpace] = {}

    # ------------------------------------------------------------------ DDL
    def create_vertex_type(self, name: str, attributes: Iterable[Attribute]) -> VertexType:
        if name in self.vertex_types:
            raise SchemaError(f"vertex type '{name}' already exists")
        vtype = VertexType(name, attributes)
        self.vertex_types[name] = vtype
        return vtype

    def create_edge_type(
        self,
        name: str,
        from_type: str,
        to_type: str,
        directed: bool = True,
        attributes: Iterable[Attribute] = (),
    ) -> EdgeType:
        if name in self.edge_types:
            raise SchemaError(f"edge type '{name}' already exists")
        for endpoint in (from_type, to_type):
            if endpoint not in self.vertex_types:
                raise UnknownTypeError(f"edge '{name}' references unknown vertex type '{endpoint}'")
        etype = EdgeType(name, from_type, to_type, directed, attributes)
        self.edge_types[name] = etype
        return etype

    def create_embedding_space(
        self,
        name: str,
        dimension: int,
        model: str = "unknown",
        index: IndexType = IndexType.HNSW,
        datatype: DataType = DataType.FLOAT,
        metric: Metric = Metric.COSINE,
        index_params: Mapping[str, int] | None = None,
    ) -> EmbeddingSpace:
        if name in self.embedding_spaces:
            raise SchemaError(f"embedding space '{name}' already exists")
        kwargs = {} if index_params is None else {"index_params": dict(index_params)}
        space = EmbeddingSpace(
            name=name,
            dimension=dimension,
            model=model,
            index=index,
            datatype=datatype,
            metric=metric,
            **kwargs,
        )
        self.embedding_spaces[name] = space
        return space

    def add_embedding_attribute(
        self,
        vertex_type: str,
        attr_name: str,
        dimension: int | None = None,
        model: str = "unknown",
        index: IndexType = IndexType.HNSW,
        datatype: DataType = DataType.FLOAT,
        metric: Metric = Metric.COSINE,
        index_params: Mapping[str, int] | None = None,
        space: str | None = None,
    ) -> EmbeddingType:
        """``ALTER VERTEX ... ADD EMBEDDING ATTRIBUTE`` (inline or via a space)."""
        vtype = self.vertex_type(vertex_type)
        if space is not None:
            try:
                emb_space = self.embedding_spaces[space]
            except KeyError:
                raise UnknownTypeError(f"unknown embedding space '{space}'") from None
            embedding = emb_space.make_attribute(attr_name)
        else:
            if dimension is None:
                raise SchemaError("embedding attribute requires DIMENSION (or an embedding space)")
            kwargs = {} if index_params is None else {"index_params": dict(index_params)}
            embedding = EmbeddingType(
                name=attr_name,
                dimension=dimension,
                model=model,
                index=index,
                datatype=datatype,
                metric=metric,
                **kwargs,
            )
        vtype.add_embedding(embedding)
        return embedding

    # -------------------------------------------------------------- lookups
    def vertex_type(self, name: str) -> VertexType:
        try:
            return self.vertex_types[name]
        except KeyError:
            raise UnknownTypeError(f"unknown vertex type '{name}'") from None

    def edge_type(self, name: str) -> EdgeType:
        try:
            return self.edge_types[name]
        except KeyError:
            raise UnknownTypeError(f"unknown edge type '{name}'") from None

    def has_vertex_type(self, name: str) -> bool:
        return name in self.vertex_types

    def embedding_attribute(self, qualified: str) -> tuple[str, EmbeddingType]:
        """Resolve ``"Type.attr"`` to ``(vertex_type_name, EmbeddingType)``."""
        if "." not in qualified:
            raise UnknownTypeError(
                f"embedding attribute reference '{qualified}' must be 'VertexType.attr'"
            )
        type_name, _, attr = qualified.partition(".")
        return type_name, self.vertex_type(type_name).embedding(attr)
