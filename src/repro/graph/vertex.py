"""User-facing vertex handles.

Internally the engine works with ``(vertex_type, vid)`` pairs; query results
surface a :class:`Vertex` that additionally carries the primary key, which is
what users recognize.  Equality and hashing use only ``(vertex_type, vid)``
so handles interoperate with raw pairs in sets and maps.
"""

from __future__ import annotations

from typing import Any

__all__ = ["Vertex"]


class Vertex:
    """A resolved vertex reference: type, internal vid, and primary key."""

    __slots__ = ("vertex_type", "vid", "pk")

    def __init__(self, vertex_type: str, vid: int, pk: Any = None):
        self.vertex_type = vertex_type
        self.vid = vid
        self.pk = pk

    def __eq__(self, other) -> bool:
        if isinstance(other, Vertex):
            return (self.vertex_type, self.vid) == (other.vertex_type, other.vid)
        if isinstance(other, tuple) and len(other) == 2:
            return (self.vertex_type, self.vid) == other
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self.vertex_type, self.vid))

    def __repr__(self) -> str:
        return f"{self.vertex_type}({self.pk if self.pk is not None else self.vid})"

    def as_pair(self) -> tuple[str, int]:
        return (self.vertex_type, self.vid)
