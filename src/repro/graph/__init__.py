"""Graph engine substrate: schema, segmented storage, MVCC, MPP primitives.

This package reimplements the parts of TigerGraph that TigerVector builds on
(paper Sec. 2.1): the property-graph schema, fixed-size vertex segments with
vertex-centric partitioning, MVCC transactions with a background vacuum,
write-ahead logging, VertexAction/EdgeAction parallel primitives, graph
pattern matching, and GSQL-style accumulators.
"""

from .accumulators import (
    AndAccum,
    AvgAccum,
    BitwiseAndAccum,
    BitwiseOrAccum,
    HeapAccum,
    ListAccum,
    MapAccum,
    MaxAccum,
    MinAccum,
    OrAccum,
    SetAccum,
    SumAccum,
)
from .schema import Attribute, EdgeType, GraphSchema, VertexType
from .storage import GraphStore
from .txn import Snapshot, Transaction

__all__ = [
    "AndAccum",
    "Attribute",
    "AvgAccum",
    "BitwiseAndAccum",
    "BitwiseOrAccum",
    "EdgeType",
    "GraphSchema",
    "GraphStore",
    "HeapAccum",
    "ListAccum",
    "MapAccum",
    "MaxAccum",
    "MinAccum",
    "OrAccum",
    "SetAccum",
    "Snapshot",
    "SumAccum",
    "Transaction",
    "VertexType",
]
