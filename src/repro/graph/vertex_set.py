"""Vertex set variables — GSQL's unit of query composition (paper Sec. 2.1).

A GSQL query is a sequence of SELECT blocks, each producing a *vertex set
variable* that later blocks can consume in their FROM clause.  TigerVector's
``VectorSearch()`` both accepts a vertex set (as a candidate filter) and
returns one (the top-k vertices), which is what lets vector search compose
with graph algorithms (queries Q2–Q4 in the paper).

Members are ``(vertex_type, vid)`` pairs, so one set can span several vertex
types (e.g. Posts and Comments together).
"""

from __future__ import annotations

from typing import Iterable, Iterator

__all__ = ["RankedVertexSet", "VertexSet"]


class VertexSet:
    """An immutable-ish set of typed vertex ids with set algebra.

    Supports the GSQL binary operators UNION, INTERSECT, and MINUS.
    """

    __slots__ = ("name", "_members")

    def __init__(self, members: Iterable[tuple[str, int]] = (), name: str = ""):
        self.name = name
        self._members: set[tuple[str, int]] = set(members)

    # ------------------------------------------------------------- basics
    def __len__(self) -> int:
        return len(self._members)

    def __iter__(self) -> Iterator[tuple[str, int]]:
        return iter(self._members)

    def __contains__(self, member: tuple[str, int]) -> bool:
        return member in self._members

    def __bool__(self) -> bool:
        return bool(self._members)

    def __eq__(self, other) -> bool:
        if not isinstance(other, VertexSet):
            return NotImplemented
        return self._members == other._members

    def __hash__(self):  # pragma: no cover - sets are not hashable by content
        return id(self)

    def add(self, vertex_type: str, vid: int) -> None:
        self._members.add((vertex_type, vid))

    def members(self) -> set[tuple[str, int]]:
        return set(self._members)

    # -------------------------------------------------------------- typed
    def vertex_types(self) -> set[str]:
        return {vertex_type for vertex_type, _ in self._members}

    def vids_of_type(self, vertex_type: str) -> set[int]:
        return {vid for vtype, vid in self._members if vtype == vertex_type}

    def restrict_to_type(self, vertex_type: str) -> "VertexSet":
        return VertexSet(
            ((vtype, vid) for vtype, vid in self._members if vtype == vertex_type),
            name=self.name,
        )

    # ------------------------------------------------------------- algebra
    def union(self, other: "VertexSet") -> "VertexSet":
        return VertexSet(self._members | other._members)

    def intersect(self, other: "VertexSet") -> "VertexSet":
        return VertexSet(self._members & other._members)

    def minus(self, other: "VertexSet") -> "VertexSet":
        return VertexSet(self._members - other._members)

    def __or__(self, other: "VertexSet") -> "VertexSet":
        return self.union(other)

    def __and__(self, other: "VertexSet") -> "VertexSet":
        return self.intersect(other)

    def __sub__(self, other: "VertexSet") -> "VertexSet":
        return self.minus(other)

    def __repr__(self) -> str:
        label = self.name or "VertexSet"
        return f"{label}({len(self._members)} vertices)"


class RankedVertexSet(VertexSet):
    """A vertex set that remembers result order and distances.

    ``ORDER BY VECTOR_DIST ... LIMIT k`` produces one of these: it behaves as
    a normal vertex set for composition, while ``ranking`` preserves the
    best-first ``((vertex_type, vid), distance)`` order for output.
    """

    __slots__ = ("ranking",)

    def __init__(
        self,
        ranking: list[tuple[tuple[str, int], float]] = (),
        name: str = "",
    ):
        super().__init__((member for member, _ in ranking), name=name)
        self.ranking = list(ranking)

    def distances(self) -> dict[tuple[str, int], float]:
        return dict(self.ranking)

    def __repr__(self) -> str:
        label = self.name or "RankedVertexSet"
        return f"{label}({len(self)} vertices, ranked)"
