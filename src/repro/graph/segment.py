"""Fixed-size vertex segments with MVCC version chains.

TigerGraph partitions each vertex type's vertices into fixed-size *segments*
(paper Sec. 2.1); segments are the unit of parallelism, distribution, and
vacuuming.  A vertex's global id (*vid*) encodes its segment: with segment
capacity ``C``, vid ``v`` lives in segment ``v // C`` at local offset
``v % C``.  Outgoing edges are stored in the source vertex's segment; a
reverse adjacency (key ``~etype``) is maintained automatically so patterns
can traverse edges in either direction.

MVCC layout
-----------
Each segment keeps a chain of immutable :class:`SegmentVersion` snapshots plus
a list of committed-but-unvacuumed :class:`DeltaOp` records ordered by TID.
A reader at snapshot TID ``S`` picks the newest version with
``base_tid <= S`` and overlays the deltas with ``version.base_tid < tid <= S``.
The vacuum (:meth:`Segment.vacuum`) folds deltas up to a TID into a fresh
version; old versions are garbage-collected once no live snapshot can see
them (:meth:`Segment.gc_versions`).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

import numpy as np

from ..analysis.hooks import schedule_point
from ..errors import ReproError
from .schema import VertexType

__all__ = ["DeltaOp", "Segment", "SegmentVersion", "reverse_edge_key"]


def reverse_edge_key(edge_type: str) -> str:
    """Adjacency key under which reverse half-edges of ``edge_type`` are stored."""
    return "~" + edge_type


@dataclass
class DeltaOp:
    """One committed, not-yet-vacuumed mutation against a segment.

    ``kind`` is one of ``upsert``, ``delete``, ``add_edge``, ``del_edge``.
    """

    tid: int
    kind: str
    offset: int
    payload: Any = None  # upsert: dict attrs; add_edge/del_edge: (key, target_vid, attrs)


class SegmentVersion:
    """An immutable columnar snapshot of a segment as of ``base_tid``."""

    __slots__ = ("base_tid", "size", "columns", "deleted", "adjacency")

    def __init__(
        self,
        base_tid: int,
        size: int,
        columns: dict[str, list],
        deleted: np.ndarray,
        adjacency: dict[str, list[list[tuple[int, dict | None]]]],
    ):
        self.base_tid = base_tid
        self.size = size
        self.columns = columns
        self.deleted = deleted
        self.adjacency = adjacency

    @classmethod
    def empty(cls, vertex_type: VertexType, capacity: int) -> "SegmentVersion":
        columns = {name: [] for name in vertex_type.attributes}
        return cls(
            base_tid=0,
            size=0,
            columns=columns,
            # Rows start "deleted" and only become live on their first
            # upsert, so allocation holes never read as live vertices.
            deleted=np.ones(capacity, dtype=bool),
            adjacency={},
        )


class Segment:
    """One vertex segment: a version chain plus pending deltas.

    Not thread-safe for concurrent writers; the :class:`GraphStore` serializes
    commits and vacuums under its commit lock.  Concurrent readers are safe
    because versions are immutable and the delta list is append-only.
    """

    def __init__(self, vertex_type: VertexType, seg_no: int, capacity: int):
        self.vertex_type = vertex_type
        self.seg_no = seg_no
        self.capacity = capacity
        self.versions: list[SegmentVersion] = [SegmentVersion.empty(vertex_type, capacity)]
        self.deltas: list[DeltaOp] = []  # ordered by tid
        self._delta_tids: list[int] = []

    # ------------------------------------------------------------- mutation
    def append_delta(self, op: DeltaOp) -> None:
        schedule_point("segment.delta.append")
        if self._delta_tids and op.tid < self._delta_tids[-1]:
            raise ReproError("segment deltas must be appended in TID order")
        self.deltas.append(op)
        self._delta_tids.append(op.tid)

    @property
    def pending_delta_count(self) -> int:
        return len(self.deltas)

    # --------------------------------------------------------------- reads
    def version_for(self, snapshot_tid: int) -> SegmentVersion:
        """Newest version with ``base_tid <= snapshot_tid``."""
        chosen = self.versions[0]
        for version in self.versions:
            if version.base_tid <= snapshot_tid:
                chosen = version
            else:
                break
        return chosen

    def _deltas_between(self, low_tid: int, high_tid: int) -> Iterator[DeltaOp]:
        """Deltas with ``low_tid < tid <= high_tid`` in commit order."""
        start = bisect.bisect_right(self._delta_tids, low_tid)
        stop = bisect.bisect_right(self._delta_tids, high_tid)
        return iter(self.deltas[start:stop])

    def read_state(self, snapshot_tid: int) -> "SegmentState":
        """Materialize the overlay view for a snapshot.

        Cheap when few deltas are pending (the common case, since the vacuum
        runs continuously); the returned object shares the base version's
        columns and only copies rows touched by deltas.
        """
        base = self.version_for(snapshot_tid)
        state = SegmentState(self, base, snapshot_tid)
        for op in self._deltas_between(base.base_tid, snapshot_tid):
            state._apply(op)
        return state

    # -------------------------------------------------------------- vacuum
    def vacuum(self, up_to_tid: int) -> SegmentVersion | None:
        """Fold deltas with ``tid <= up_to_tid`` into a new base version.

        Returns the new version, or ``None`` when there was nothing to fold.
        The consumed deltas stay in place until :meth:`gc_versions` confirms
        no live snapshot still needs to overlay them onto an older base.
        """
        newest = self.versions[-1]
        pending = list(self._deltas_between(newest.base_tid, up_to_tid))
        if not pending:
            return None
        columns = {name: list(col) for name, col in newest.columns.items()}
        deleted = newest.deleted.copy()
        adjacency = {
            key: [list(edges) for edges in per_offset]
            for key, per_offset in newest.adjacency.items()
        }
        size = newest.size
        for op in pending:
            if op.kind == "upsert":
                size = max(size, op.offset + 1)
                for col in columns.values():
                    while len(col) < size:
                        col.append(None)
                for name, value in op.payload.items():
                    columns[name][op.offset] = value
                deleted[op.offset] = False
            elif op.kind == "delete":
                deleted[op.offset] = True
                for per_offset in adjacency.values():
                    if op.offset < len(per_offset):
                        per_offset[op.offset] = []
            elif op.kind == "add_edge":
                key, target, attrs = op.payload
                per_offset = adjacency.setdefault(key, [])
                while len(per_offset) <= op.offset:
                    per_offset.append([])
                per_offset[op.offset].append((target, attrs))
            elif op.kind == "del_edge":
                key, target, _ = op.payload
                per_offset = adjacency.get(key)
                if per_offset and op.offset < len(per_offset):
                    per_offset[op.offset] = [
                        (t, a) for (t, a) in per_offset[op.offset] if t != target
                    ]
            else:  # pragma: no cover - defensive
                raise ReproError(f"unknown delta op kind '{op.kind}'")
        new_version = SegmentVersion(
            base_tid=pending[-1].tid,
            size=size,
            columns=columns,
            deleted=deleted,
            adjacency=adjacency,
        )
        self.versions.append(new_version)
        return new_version

    def gc_versions(self, min_active_snapshot_tid: int) -> int:
        """Drop versions and consumed deltas no live snapshot can still read.

        A version is reclaimable when a newer version exists whose
        ``base_tid <= min_active_snapshot_tid`` (every snapshot will pick the
        newer one).  Returns the number of versions dropped.
        """
        keep_from = 0
        for i in range(len(self.versions) - 1):
            if self.versions[i + 1].base_tid <= min_active_snapshot_tid:
                keep_from = i + 1
        dropped = keep_from
        if keep_from:
            self.versions = self.versions[keep_from:]
        # Deltas folded into the oldest surviving version are unreachable.
        cutoff = self.versions[0].base_tid
        start = bisect.bisect_right(self._delta_tids, cutoff)
        if start:
            self.deltas = self.deltas[start:]
            self._delta_tids = self._delta_tids[start:]
        return dropped


class SegmentState:
    """A snapshot-consistent read view over one segment.

    Copy-on-write: attribute columns and adjacency lists are shared with the
    base version until a delta touches them.
    """

    def __init__(self, segment: Segment, base: SegmentVersion, snapshot_tid: int):
        self.segment = segment
        self.snapshot_tid = snapshot_tid
        self.size = base.size
        self._base = base
        self._columns = base.columns  # possibly replaced by a copy on write
        self._columns_owned = False
        self._deleted = base.deleted
        self._deleted_owned = False
        self._adjacency: dict[str, Any] = base.adjacency
        self._adjacency_owned = False
        self._touched_adj: set[str] = set()

    # -------------------------------------------------- delta application
    def _own_columns(self) -> None:
        if not self._columns_owned:
            self._columns = {name: list(col) for name, col in self._columns.items()}
            self._columns_owned = True

    def _own_deleted(self) -> None:
        if not self._deleted_owned:
            self._deleted = self._deleted.copy()
            self._deleted_owned = True

    def _own_adjacency(self, key: str) -> list[list[tuple[int, dict | None]]]:
        if not self._adjacency_owned:
            self._adjacency = dict(self._adjacency)
            self._adjacency_owned = True
        if key not in self._touched_adj:
            per_offset = [list(edges) for edges in self._adjacency.get(key, [])]
            self._adjacency[key] = per_offset
            self._touched_adj.add(key)
        return self._adjacency[key]

    def _apply(self, op: DeltaOp) -> None:
        if op.kind == "upsert":
            self._own_columns()
            self._own_deleted()
            self.size = max(self.size, op.offset + 1)
            for col in self._columns.values():
                while len(col) < self.size:
                    col.append(None)
            for name, value in op.payload.items():
                self._columns[name][op.offset] = value
            self._deleted[op.offset] = False
        elif op.kind == "delete":
            self._own_deleted()
            self._deleted[op.offset] = True
        elif op.kind == "add_edge":
            key, target, attrs = op.payload
            per_offset = self._own_adjacency(key)
            while len(per_offset) <= op.offset:
                per_offset.append([])
            per_offset[op.offset].append((target, attrs))
        elif op.kind == "del_edge":
            key, target, _ = op.payload
            per_offset = self._own_adjacency(key)
            if op.offset < len(per_offset):
                per_offset[op.offset] = [
                    (t, a) for (t, a) in per_offset[op.offset] if t != target
                ]

    # --------------------------------------------------------------- reads
    def exists(self, offset: int) -> bool:
        return offset < self.size and not self._deleted[offset]

    def get_attr(self, offset: int, name: str) -> Any:
        col = self._columns[name]
        return col[offset] if offset < len(col) else None

    def get_row(self, offset: int) -> dict[str, Any]:
        return {name: self.get_attr(offset, name) for name in self._columns}

    def neighbors(self, offset: int, key: str) -> list[tuple[int, dict | None]]:
        per_offset = self._adjacency.get(key, [])
        if offset >= len(per_offset):
            return []
        return per_offset[offset]

    def valid_mask(self) -> np.ndarray:
        """Boolean mask of live offsets, length = segment capacity.

        This is the per-segment *vertex status structure* that TigerVector
        reuses as a vector-search bitmap instead of allocating a new one
        (paper Sec. 5.1).
        """
        mask = np.zeros(self.segment.capacity, dtype=bool)
        if self.size:
            mask[: self.size] = ~self._deleted[: self.size]
        return mask

    def iter_live_offsets(self) -> Iterator[int]:
        deleted = self._deleted
        for offset in range(self.size):
            if not deleted[offset]:
                yield offset

    def column(self, name: str) -> list:
        return self._columns[name]
