"""GraphStore: segmented vertex/edge storage with MVCC and a WAL.

The store owns, per vertex type, a growable array of fixed-size
:class:`~repro.graph.segment.Segment` objects and a primary-key index.  It
serializes commits under a lock (TigerGraph's atomic commit protocol), logs
each transaction to the WAL before applying it, registers live snapshots so
the vacuum never reclaims a version that a reader can still see, and forwards
embedding mutations to a registered hook (the embedding service installs
itself there) *under the same TID* — the mechanism behind TigerVector's
atomic mixed graph/vector updates.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Iterable

from ..analysis.hooks import schedule_point
from ..errors import ReproError, TransactionError, UnknownTypeError
from .schema import GraphSchema
from .segment import DeltaOp, Segment, reverse_edge_key
from .txn import Snapshot, Transaction
from .wal import WriteAheadLog

__all__ = ["GraphStore"]

#: ``(tid, ops)`` callback type; ops are ``(kind, vertex_type, vid, attr, vector|None)``.
EmbeddingHook = Callable[[int, list[tuple]], None]


class GraphStore:
    """A single-process graph database instance.

    Parameters
    ----------
    schema:
        The catalog; may be extended (new types) after creation.
    segment_size:
        Vertex-segment capacity.  The paper uses large segments (the unit of
        distribution); tests use small values to exercise multi-segment paths.
    wal_path:
        Optional path for the write-ahead log; ``None`` keeps it in memory.
    """

    def __init__(
        self,
        schema: GraphSchema,
        segment_size: int = 4096,
        wal_path=None,
    ):
        if segment_size <= 0:
            raise ReproError("segment_size must be positive")
        self.schema = schema
        self.segment_size = segment_size
        self.wal = WriteAheadLog(wal_path)
        self._segments: dict[str, list[Segment]] = {}
        self._next_vid: dict[str, int] = {}
        self._pk_index: dict[str, dict[Any, int]] = {}
        self._commit_lock = threading.Lock()
        # Reentrant guard for the type/segment registry and pk index: taken
        # alone on read paths and nested under _commit_lock on write paths
        # (consistent order: _commit_lock -> _registry_lock, never reversed).
        self._registry_lock = threading.RLock()
        self._last_tid = 0
        self._active_snapshots: dict[int, int] = {}  # tid -> refcount
        self._snapshot_lock = threading.Lock()
        self._embedding_hooks: list[EmbeddingHook] = []
        # Crash-injection failpoint (repro.faults): called inside the commit
        # critical section at stages "pre-wal", "post-wal", and "apply"
        # (once per op).  Raising SimulatedCrash there models a process
        # dying mid-commit; recovery must then come from the WAL file.
        self._commit_failpoint: Callable[[str, int], None] | None = None

    # ---------------------------------------------------------------- hooks
    def register_embedding_hook(self, hook: EmbeddingHook) -> None:
        """Install a callback invoked inside commit with embedding ops."""
        with self._registry_lock:
            self._embedding_hooks.append(hook)

    def set_commit_failpoint(self, failpoint: Callable[[str, int], None] | None) -> None:
        """Install (or clear) the mid-commit crash-injection failpoint."""
        self._commit_failpoint = failpoint

    # ------------------------------------------------------------- segments
    def _ensure_type(self, vertex_type: str) -> None:
        if vertex_type in self._segments:
            return
        self.schema.vertex_type(vertex_type)  # raises if unknown
        with self._registry_lock:
            if vertex_type not in self._segments:
                self._next_vid[vertex_type] = 0
                self._pk_index[vertex_type] = {}
                # Assigned last: readers key presence checks off _segments.
                self._segments[vertex_type] = []

    def _segment(self, vertex_type: str, seg_no: int) -> Segment:
        self._ensure_type(vertex_type)
        segments = self._segments[vertex_type]
        if len(segments) <= seg_no:
            with self._registry_lock:
                while len(segments) <= seg_no:
                    segments.append(
                        Segment(
                            self.schema.vertex_type(vertex_type),
                            len(segments),
                            self.segment_size,
                        )
                    )
        return segments[seg_no]

    def _num_segments(self, vertex_type: str) -> int:
        self._ensure_type(vertex_type)
        return len(self._segments[vertex_type])

    def segments(self, vertex_type: str) -> list[Segment]:
        self._ensure_type(vertex_type)
        return list(self._segments[vertex_type])

    # ----------------------------------------------------------- id mapping
    def vid_for_pk(self, vertex_type: str, pk: Any) -> int | None:
        """Latest-committed pk lookup (snapshot-aware reads go via Snapshot)."""
        self._ensure_type(vertex_type)
        return self._pk_index[vertex_type].get(pk)

    def pk_for_vid(self, vertex_type: str, vid: int) -> Any:
        vtype = self.schema.vertex_type(vertex_type)
        with self.snapshot() as snap:
            return snap.get_attr(vertex_type, vid, vtype.primary_key)

    def _allocate_vid(self, vertex_type: str, pk: Any) -> int:
        with self._registry_lock:
            index = self._pk_index[vertex_type]
            vid = index.get(pk)
            if vid is None:
                vid = self._next_vid[vertex_type]
                self._next_vid[vertex_type] = vid + 1
                index[pk] = vid
            return vid

    # ------------------------------------------------------------ lifecycle
    def begin(self) -> Transaction:
        return Transaction(self)

    def snapshot(self) -> Snapshot:
        schedule_point("storage.snapshot.pin")
        with self._snapshot_lock:
            tid = self._last_tid
            self._active_snapshots[tid] = self._active_snapshots.get(tid, 0) + 1
        return Snapshot(self, tid)

    def _release_snapshot(self, snapshot: Snapshot) -> None:
        with self._snapshot_lock:
            count = self._active_snapshots.get(snapshot.tid, 0) - 1
            if count <= 0:
                self._active_snapshots.pop(snapshot.tid, None)
            else:
                self._active_snapshots[snapshot.tid] = count

    def min_active_snapshot_tid(self) -> int:
        """Oldest TID any live reader may still observe."""
        with self._snapshot_lock:
            if not self._active_snapshots:
                return self._last_tid
            return min(self._active_snapshots)

    @property
    def last_tid(self) -> int:
        return self._last_tid

    def session_token(self) -> int:
        """Read-your-writes token: the latest *published* commit TID.

        :meth:`Transaction.commit` returns the committed TID directly —
        that return value IS the session token for the writes it covers.
        This accessor exists for sessions that observed a write indirectly
        (e.g. through a commit hook) and need a token for "everything
        published so far".  A serving snapshot covers a token ``t`` iff
        ``snapshot.tid >= t``; the serve layer's session-token check
        (``repro.serve``) enforces exactly that, closing the window where a
        commit's embedding hook has fired (watermark bumped, token derivable)
        but ``last_tid`` is not yet published.
        """
        with self._snapshot_lock:
            return self._last_tid

    # ---------------------------------------------------------------- commit
    def _commit(self, ops: list[tuple]) -> int:
        with self._commit_lock:
            tid = self._last_tid + 1
            failpoint = self._commit_failpoint
            if failpoint is not None:
                failpoint("pre-wal", tid)
            self.wal.append(tid, ops)
            if failpoint is not None:
                failpoint("post-wal", tid)
            embedding_ops: list[tuple] = []
            for op in ops:
                if failpoint is not None:
                    failpoint("apply", tid)
                self._apply_op(tid, op, embedding_ops)
            if embedding_ops:
                for hook in self._embedding_hooks:
                    hook(tid, embedding_ops)
            # The window between the embedding hooks (which bump watermark
            # components) and publishing last_tid is the commit-race class
            # the serve cache validates against; make it explorable.
            schedule_point("storage.commit.publish")
            self._last_tid = tid
            return tid

    def _apply_op(self, tid: int, op: tuple, embedding_ops: list[tuple]) -> None:
        kind = op[0]
        if kind == "upsert_vertex":
            _, vertex_type, pk, attrs = op
            self._ensure_type(vertex_type)
            vid = self._allocate_vid(vertex_type, pk)
            seg_no, offset = divmod(vid, self.segment_size)
            vtype = self.schema.vertex_type(vertex_type)
            existing = None
            segment = self._segment(vertex_type, seg_no)
            # Merge into existing values so partial upserts keep old attrs.
            state = segment.read_state(tid)
            if state.exists(offset):
                existing = state.get_row(offset)
            row = {name: attr.default for name, attr in vtype.attributes.items()}
            if existing:
                row.update({k: v for k, v in existing.items() if v is not None})
            row.update(attrs)
            segment.append_delta(DeltaOp(tid, "upsert", offset, row))
        elif kind == "delete_vertex":
            _, vertex_type, pk = op
            self._ensure_type(vertex_type)
            vid = self._pk_index[vertex_type].get(pk)
            if vid is None:
                return  # deleting a missing vertex is a no-op
            seg_no, offset = divmod(vid, self.segment_size)
            self._segment(vertex_type, seg_no).append_delta(DeltaOp(tid, "delete", offset))
            with self._registry_lock:
                self._pk_index[vertex_type].pop(pk, None)
            # Cascade: drop this vertex's embeddings too.
            vtype = self.schema.vertex_type(vertex_type)
            for attr in vtype.embeddings:
                embedding_ops.append(("delete", vertex_type, vid, attr, None))
        elif kind == "add_edge":
            _, edge_type, from_pk, to_pk, attrs = op
            etype = self.schema.edge_type(edge_type)
            from_vid = self._require_vid(etype.from_type, from_pk)
            to_vid = self._require_vid(etype.to_type, to_pk)
            self._add_half_edge(tid, etype.from_type, from_vid, edge_type, to_vid, attrs)
            self._add_half_edge(
                tid, etype.to_type, to_vid, reverse_edge_key(edge_type), from_vid, attrs
            )
            if not etype.directed:
                # Undirected edges are symmetric: store the mirrored pair of
                # half-edges too so forward traversal works from either end.
                self._add_half_edge(tid, etype.to_type, to_vid, edge_type, from_vid, attrs)
                self._add_half_edge(
                    tid, etype.from_type, from_vid, reverse_edge_key(edge_type), to_vid, attrs
                )
        elif kind == "delete_edge":
            _, edge_type, from_pk, to_pk = op
            etype = self.schema.edge_type(edge_type)
            from_vid = self._require_vid(etype.from_type, from_pk)
            to_vid = self._require_vid(etype.to_type, to_pk)
            self._del_half_edge(tid, etype.from_type, from_vid, edge_type, to_vid)
            self._del_half_edge(
                tid, etype.to_type, to_vid, reverse_edge_key(edge_type), from_vid
            )
            if not etype.directed:
                self._del_half_edge(tid, etype.to_type, to_vid, edge_type, from_vid)
                self._del_half_edge(
                    tid, etype.from_type, from_vid, reverse_edge_key(edge_type), to_vid
                )
        elif kind == "set_embedding":
            _, vertex_type, pk, attr, vector = op
            self._ensure_type(vertex_type)
            vid = self._require_vid(vertex_type, pk)
            embedding_ops.append(("upsert", vertex_type, vid, attr, vector))
        elif kind == "delete_embedding":
            _, vertex_type, pk, attr = op
            self._ensure_type(vertex_type)
            vid = self._require_vid(vertex_type, pk)
            embedding_ops.append(("delete", vertex_type, vid, attr, None))
        else:  # pragma: no cover - defensive
            raise ReproError(f"unknown transaction op '{kind}'")

    def _require_vid(self, vertex_type: str, pk: Any) -> int:
        self._ensure_type(vertex_type)
        vid = self._pk_index[vertex_type].get(pk)
        if vid is None:
            raise TransactionError(
                f"vertex {vertex_type}({pk!r}) does not exist; insert it first"
            )
        return vid

    def _add_half_edge(
        self, tid: int, vertex_type: str, vid: int, key: str, target: int, attrs: dict
    ) -> None:
        seg_no, offset = divmod(vid, self.segment_size)
        self._segment(vertex_type, seg_no).append_delta(
            DeltaOp(tid, "add_edge", offset, (key, target, attrs or None))
        )

    def _del_half_edge(self, tid: int, vertex_type: str, vid: int, key: str, target: int) -> None:
        seg_no, offset = divmod(vid, self.segment_size)
        self._segment(vertex_type, seg_no).append_delta(
            DeltaOp(tid, "del_edge", offset, (key, target, None))
        )

    # ---------------------------------------------------------------- vacuum
    def vacuum(self, up_to_tid: int | None = None) -> int:
        """Fold committed deltas into new segment versions.

        Returns the number of segments that produced a new version.  Old
        versions are garbage-collected based on the oldest live snapshot.
        """
        target = self._last_tid if up_to_tid is None else up_to_tid
        rebuilt = 0
        with self._commit_lock:
            for segments in self._segments.values():
                for segment in segments:
                    if segment.vacuum(target) is not None:
                        rebuilt += 1
            min_tid = self.min_active_snapshot_tid()
            for segments in self._segments.values():
                for segment in segments:
                    segment.gc_versions(min_tid)
        return rebuilt

    def pending_delta_count(self) -> int:
        return sum(
            segment.pending_delta_count
            for segments in self._segments.values()
            for segment in segments
        )

    # ------------------------------------------------------------- recovery
    @classmethod
    def recover(
        cls,
        schema: GraphSchema,
        wal_path,
        segment_size: int = 4096,
        embedding_hook: EmbeddingHook | None = None,
    ) -> "GraphStore":
        """Rebuild a store by replaying a WAL file into a fresh instance.

        ``embedding_hook`` (if given) is registered *before* replay so the
        embedding service recovers vector state from the same log.  The new
        store keeps logging to the same file, so recovery is idempotent
        across repeated crashes.
        """
        source = WriteAheadLog(wal_path)
        replayed: list[tuple[int, list]] = list(source.replay())
        source.close()
        store = cls(schema, segment_size=segment_size, wal_path=None)
        if embedding_hook is not None:
            store.register_embedding_hook(embedding_hook)
        for tid, ops in replayed:
            with store._commit_lock:
                embedding_ops: list[tuple] = []
                for op in ops:
                    store._apply_op(tid, tuple(op), embedding_ops)
                if embedding_ops:
                    for hook in store._embedding_hooks:
                        hook(tid, embedding_ops)
                store._last_tid = tid
        store.wal.close()
        store.wal = WriteAheadLog(wal_path)
        return store
