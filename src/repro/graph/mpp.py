"""MPP parallel primitives: VertexAction and EdgeAction (paper Sec. 2.1).

TigerGraph exposes two parallel primitives that run user functions across
segments; TigerVector adds a third, EmbeddingAction, in
:mod:`repro.core.action`.  Here segments map to thread-pool tasks.  Python
threads contend on the GIL for pure-Python work, but the numpy distance
kernels used by vector search release it, so the architecture carries over:
segments are the unit of parallelism, and per-segment results are merged by
the caller.

The pool is shared and sized like TigerVector's dynamically-tuned vacuum
pool: ``max_workers`` defaults to the CPU count but can be tuned down when
foreground queries need headroom.
"""

from __future__ import annotations

import os
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Any, Callable, Iterable, Sequence, TypeVar

from .segment import SegmentState
from .txn import Snapshot

__all__ = ["MPPExecutor", "edge_action", "vertex_action"]

R = TypeVar("R")


class MPPExecutor:
    """A reusable worker pool for segment-parallel actions."""

    def __init__(self, max_workers: int | None = None):
        self.max_workers = max_workers or min(32, (os.cpu_count() or 4))
        self._pool: ThreadPoolExecutor | None = None

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.max_workers, thread_name_prefix="mpp"
            )
        return self._pool

    def submit(self, fn: Callable[..., R], /, *args, **kwargs) -> "Future[R]":
        """Schedule one call on the shared pool (lazy-started)."""
        return self._ensure_pool().submit(fn, *args, **kwargs)

    def map(
        self,
        fn: Callable[[Any], R],
        items: Iterable[Any],
        parallel: bool = True,
    ) -> list[R]:
        """Run ``fn`` over ``items``, returning results in input order.

        Falls back to a serial loop when parallelism is disabled, the pool
        is sized for one worker, or there is at most one item — the same
        dispatch rule every segment-parallel action uses.
        """
        items = list(items)
        if not parallel or len(items) <= 1 or self.max_workers <= 1:
            return [fn(item) for item in items]
        futures = [self.submit(fn, item) for item in items]
        return [future.result() for future in futures]

    def map_segments(
        self,
        fn: Callable[[int, SegmentState], R],
        snapshot: Snapshot,
        vertex_type: str,
        seg_nos: Sequence[int] | None = None,
        parallel: bool = True,
    ) -> list[R]:
        """Run ``fn(seg_no, segment_state)`` over segments, returning results in order."""
        if seg_nos is None:
            seg_nos = range(snapshot.num_segments(vertex_type))
        states = [(seg_no, snapshot.segment_state(vertex_type, seg_no)) for seg_no in seg_nos]
        if not parallel or len(states) <= 1 or self.max_workers <= 1:
            return [fn(seg_no, state) for seg_no, state in states]
        futures = [self.submit(fn, seg_no, state) for seg_no, state in states]
        return [future.result() for future in futures]

    def shutdown(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "MPPExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()


_DEFAULT_EXECUTOR = MPPExecutor()


def vertex_action(
    snapshot: Snapshot,
    vertex_type: str,
    fn: Callable[[int, dict[str, Any]], R | None],
    executor: MPPExecutor | None = None,
    parallel: bool = True,
) -> list[R]:
    """Apply ``fn(vid, attrs)`` to every live vertex; collect non-None results.

    This is TigerGraph's *VertexAction*: the function runs segment-parallel
    and results are concatenated in segment order (deterministic).
    """
    executor = executor or _DEFAULT_EXECUTOR
    capacity = snapshot._store.segment_size

    def per_segment(seg_no: int, state: SegmentState) -> list[R]:
        base = seg_no * capacity
        results: list[R] = []
        for offset in state.iter_live_offsets():
            out = fn(base + offset, state.get_row(offset))
            if out is not None:
                results.append(out)
        return results

    chunks = executor.map_segments(per_segment, snapshot, vertex_type, parallel=parallel)
    return [item for chunk in chunks for item in chunk]


def edge_action(
    snapshot: Snapshot,
    vertex_type: str,
    edge_type: str,
    fn: Callable[[int, int, dict | None], R | None],
    executor: MPPExecutor | None = None,
    reverse: bool = False,
    parallel: bool = True,
) -> list[R]:
    """Apply ``fn(source_vid, target_vid, edge_attrs)`` to every out-edge.

    Edges live in their source vertex's segment, so EdgeAction parallelizes
    over source segments exactly like VertexAction.
    """
    from .segment import reverse_edge_key

    executor = executor or _DEFAULT_EXECUTOR
    capacity = snapshot._store.segment_size
    key = reverse_edge_key(edge_type) if reverse else edge_type

    def per_segment(seg_no: int, state: SegmentState) -> list[R]:
        base = seg_no * capacity
        results: list[R] = []
        for offset in state.iter_live_offsets():
            vid = base + offset
            for target, attrs in state.neighbors(offset, key):
                out = fn(vid, target, attrs)
                if out is not None:
                    results.append(out)
        return results

    chunks = executor.map_segments(per_segment, snapshot, vertex_type, parallel=parallel)
    return [item for chunk in chunks for item in chunk]
