"""Write-ahead log for durability and crash recovery.

TigerGraph uses a distributed, replicated WAL (paper Sec. 4.3); this
single-process reproduction writes one JSON-lines file per store.  Every
committed transaction appends a single record *before* its effects are
applied to segments, so replaying the log into a fresh store reconstructs
all committed state — including embedding upserts, which is how TigerVector
gets atomic cross graph/vector durability.

The log can also run purely in memory (``path=None``) for tests.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Iterator

import numpy as np

__all__ = ["WriteAheadLog"]


def _jsonify(value: Any) -> Any:
    """Make a WAL payload JSON-serializable (numpy arrays become lists)."""
    if isinstance(value, np.ndarray):
        return {"__ndarray__": value.tolist(), "dtype": str(value.dtype)}
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, dict):
        return {k: _jsonify(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonify(v) for v in value]
    return value


def _unjsonify(value: Any) -> Any:
    if isinstance(value, dict):
        if "__ndarray__" in value:
            return np.asarray(value["__ndarray__"], dtype=value.get("dtype", "float32"))
        return {k: _unjsonify(v) for k, v in value.items()}
    if isinstance(value, list):
        return [_unjsonify(v) for v in value]
    return value


class WriteAheadLog:
    """Append-only commit log.

    Records have the shape ``{"tid": int, "ops": [[opname, args...], ...]}``.
    """

    def __init__(self, path: str | os.PathLike | None = None, fsync: bool = False):
        self.path = Path(path) if path is not None else None
        self.fsync = fsync
        self._memory: list[dict] = []
        self._file = None
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._file = open(self.path, "a", encoding="utf-8")

    def append(self, tid: int, ops: list[tuple]) -> None:
        record = {"tid": tid, "ops": [_jsonify(list(op)) for op in ops]}
        if self._file is not None:
            self._file.write(json.dumps(record) + "\n")
            self._file.flush()
            if self.fsync:
                os.fsync(self._file.fileno())
        else:
            self._memory.append(record)

    def replay(self) -> Iterator[tuple[int, list[list]]]:
        """Yield ``(tid, ops)`` for every committed transaction, in order."""
        if self.path is not None:
            if not self.path.exists():
                return
            with open(self.path, encoding="utf-8") as fh:
                for line in fh:
                    line = line.strip()
                    if not line:
                        continue
                    record = json.loads(line)
                    yield record["tid"], [_unjsonify(op) for op in record["ops"]]
        else:
            for record in self._memory:
                yield record["tid"], [_unjsonify(op) for op in record["ops"]]

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
