"""Write-ahead log for durability and crash recovery.

TigerGraph uses a distributed, replicated WAL (paper Sec. 4.3); this
single-process reproduction writes one JSON-lines file per store.  Every
committed transaction appends a single record *before* its effects are
applied to segments, so replaying the log into a fresh store reconstructs
all committed state — including embedding upserts, which is how TigerVector
gets atomic cross graph/vector durability.

Crash tolerance: a process dying mid-append leaves a *torn* trailing record
(a partial JSON line).  Under the WAL-before-apply protocol that
transaction never committed, so :meth:`WriteAheadLog.replay` tolerates the
torn tail — it keeps every complete record, logs a warning, and truncates
the file back to the last complete record so the next append starts clean.
A malformed record that is *not* the tail means the durable history itself
is damaged and replay raises :class:`~repro.errors.WALCorruptionError`
rather than guess.  The fault harness (``repro.faults``) injects torn tails
via :meth:`arm_torn_write`.

The log can also run purely in memory (``path=None``) for tests.
"""

from __future__ import annotations

import json
import logging
import os
from pathlib import Path
from typing import Any, Iterator

import numpy as np

from ..errors import SimulatedCrash, WALCorruptionError
from ..telemetry import get_telemetry

__all__ = ["WriteAheadLog"]

logger = logging.getLogger(__name__)


def _jsonify(value: Any) -> Any:
    """Make a WAL payload JSON-serializable (numpy arrays become lists)."""
    if isinstance(value, np.ndarray):
        return {"__ndarray__": value.tolist(), "dtype": str(value.dtype)}
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, dict):
        return {k: _jsonify(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonify(v) for v in value]
    return value


def _unjsonify(value: Any) -> Any:
    if isinstance(value, dict):
        if "__ndarray__" in value:
            return np.asarray(value["__ndarray__"], dtype=value.get("dtype", "float32"))
        return {k: _unjsonify(v) for k, v in value.items()}
    if isinstance(value, list):
        return [_unjsonify(v) for v in value]
    return value


class WriteAheadLog:
    """Append-only commit log.

    Records have the shape ``{"tid": int, "ops": [[opname, args...], ...]}``.
    """

    def __init__(self, path: str | os.PathLike | None = None, fsync: bool = False):
        self.path = Path(path) if path is not None else None
        self.fsync = fsync
        self._memory: list[dict] = []
        self._file = None
        self._torn_fraction: float | None = None
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._file = open(self.path, "a", encoding="utf-8")

    # ------------------------------------------------------ fault injection
    def arm_torn_write(self, fraction: float = 0.5) -> None:
        """Make the *next* append write a torn record prefix and die.

        Models a crash mid-``append``: only ``fraction`` of the record's
        bytes (never the trailing newline) reach the file before
        :class:`~repro.errors.SimulatedCrash` is raised.  In-memory logs
        cannot tear — the record is simply lost before the crash.
        """
        if not 0.0 < fraction < 1.0:
            raise ValueError("torn fraction must be in (0, 1)")
        self._torn_fraction = fraction

    def append(self, tid: int, ops: list[tuple]) -> None:
        record = {"tid": tid, "ops": [_jsonify(list(op)) for op in ops]}
        if self._torn_fraction is not None:
            fraction = self._torn_fraction
            self._torn_fraction = None
            if self._file is not None:
                payload = json.dumps(record)
                cut = max(1, int(len(payload) * fraction))
                self._file.write(payload[:cut])
                self._file.flush()
                if self.fsync:
                    os.fsync(self._file.fileno())
            raise SimulatedCrash(f"injected crash mid-append (tid {tid})")
        if self._file is not None:
            self._file.write(json.dumps(record) + "\n")
            self._file.flush()
            if self.fsync:
                os.fsync(self._file.fileno())
        else:
            self._memory.append(record)
        tel = get_telemetry()
        if tel.enabled:
            tel.inc("wal.records")
            if self._file is not None:
                tel.inc("wal.flushes")
                if self.fsync:
                    tel.inc("wal.fsyncs")

    def replay(self) -> Iterator[tuple[int, list[list]]]:
        """Yield ``(tid, ops)`` for every committed transaction, in order.

        A torn trailing record (crash mid-append) is dropped and truncated
        away; a corrupt record followed by more data raises
        :class:`WALCorruptionError`.
        """
        tel = get_telemetry()
        if self.path is not None:
            if not self.path.exists():
                return
            with open(self.path, "rb") as fh:
                lines = fh.readlines()
            clean_bytes = 0  # length of the verified prefix
            for lineno, raw in enumerate(lines):
                text = raw.decode("utf-8", errors="replace").strip()
                if not text:
                    clean_bytes += len(raw)
                    continue
                record = self._decode(text)
                if record is None:
                    tail = b"".join(lines[lineno + 1 :])
                    if tail.strip():
                        tel.inc("wal.replay_corrupt")
                        raise WALCorruptionError(
                            f"corrupt WAL record at {self.path}:{lineno + 1} is "
                            f"followed by {len(tail)} more bytes; refusing to "
                            f"truncate committed history"
                        )
                    logger.warning(
                        "WAL %s: torn trailing record at line %d (%d bytes); "
                        "dropping it and truncating to last complete record",
                        self.path,
                        lineno + 1,
                        len(raw),
                    )
                    os.truncate(self.path, clean_bytes)
                    tel.inc("wal.replay_truncated")
                    return
                clean_bytes += len(raw)
                tel.inc("wal.replayed_records")
                yield record["tid"], [_unjsonify(op) for op in record["ops"]]
        else:
            for record in self._memory:
                tel.inc("wal.replayed_records")
                yield record["tid"], [_unjsonify(op) for op in record["ops"]]

    @staticmethod
    def _decode(text: str) -> dict | None:
        """Parse one record line; None when it is torn/malformed."""
        try:
            record = json.loads(text)
        except json.JSONDecodeError:
            return None
        if not isinstance(record, dict) or "tid" not in record or "ops" not in record:
            return None
        return record

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
