"""GSQL accumulators (paper Sec. 2.1).

Accumulators are GSQL's signature compositional tool: mutable runtime
variables that aggregate values as query blocks activate vertices.  Global
accumulators (``@@name``) live for the whole query; vertex-local accumulators
(``@name``) attach one instance per vertex.

Every accumulator implements ``accum(value)`` (GSQL's ``+=``) and exposes
``value``.  :class:`HeapAccum` is the one the paper leans on for vector
similarity joins (Sec. 5.4): a bounded top-k heap ordered by a sort key.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Generic, Iterable, TypeVar

from ..errors import ReproError

__all__ = [
    "Accumulator",
    "AndAccum",
    "AvgAccum",
    "BitwiseAndAccum",
    "BitwiseOrAccum",
    "HeapAccum",
    "ListAccum",
    "MapAccum",
    "MaxAccum",
    "MinAccum",
    "OrAccum",
    "SetAccum",
    "SumAccum",
    "VertexAccumMap",
    "make_accumulator",
]

T = TypeVar("T")


class Accumulator(Generic[T]):
    """Base accumulator protocol: ``accum`` values, read ``value``."""

    def accum(self, value: T) -> None:
        raise NotImplementedError

    def __iadd__(self, value: T) -> "Accumulator[T]":
        self.accum(value)
        return self

    @property
    def value(self) -> Any:
        raise NotImplementedError

    def reset(self) -> None:
        raise NotImplementedError

    def fresh(self) -> "Accumulator[T]":
        """A new empty accumulator of the same configuration."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.value!r})"


class SumAccum(Accumulator):
    """Additive accumulator for numbers (or string concatenation, as in GSQL)."""

    def __init__(self, initial=0):
        self._initial = initial
        self._value = initial

    def accum(self, value) -> None:
        self._value = self._value + value

    @property
    def value(self):
        return self._value

    def reset(self) -> None:
        self._value = self._initial

    def fresh(self) -> "SumAccum":
        return SumAccum(self._initial)


class MinAccum(Accumulator):
    def __init__(self):
        self._value = None

    def accum(self, value) -> None:
        if self._value is None or value < self._value:
            self._value = value

    @property
    def value(self):
        return self._value

    def reset(self) -> None:
        self._value = None

    def fresh(self) -> "MinAccum":
        return MinAccum()


class MaxAccum(Accumulator):
    def __init__(self):
        self._value = None

    def accum(self, value) -> None:
        if self._value is None or value > self._value:
            self._value = value

    @property
    def value(self):
        return self._value

    def reset(self) -> None:
        self._value = None

    def fresh(self) -> "MaxAccum":
        return MaxAccum()


class AvgAccum(Accumulator):
    def __init__(self):
        self._total = 0.0
        self._count = 0

    def accum(self, value) -> None:
        self._total += value
        self._count += 1

    @property
    def value(self):
        return self._total / self._count if self._count else 0.0

    @property
    def count(self) -> int:
        return self._count

    def reset(self) -> None:
        self._total = 0.0
        self._count = 0

    def fresh(self) -> "AvgAccum":
        return AvgAccum()


class OrAccum(Accumulator):
    def __init__(self, initial: bool = False):
        self._initial = bool(initial)
        self._value = self._initial

    def accum(self, value) -> None:
        self._value = self._value or bool(value)

    @property
    def value(self) -> bool:
        return self._value

    def reset(self) -> None:
        self._value = self._initial

    def fresh(self) -> "OrAccum":
        return OrAccum(self._initial)


class AndAccum(Accumulator):
    def __init__(self, initial: bool = True):
        self._initial = bool(initial)
        self._value = self._initial

    def accum(self, value) -> None:
        self._value = self._value and bool(value)

    @property
    def value(self) -> bool:
        return self._value

    def reset(self) -> None:
        self._value = self._initial

    def fresh(self) -> "AndAccum":
        return AndAccum(self._initial)


class BitwiseOrAccum(Accumulator):
    def __init__(self):
        self._value = 0

    def accum(self, value) -> None:
        self._value |= int(value)

    @property
    def value(self) -> int:
        return self._value

    def reset(self) -> None:
        self._value = 0

    def fresh(self) -> "BitwiseOrAccum":
        return BitwiseOrAccum()


class BitwiseAndAccum(Accumulator):
    def __init__(self):
        self._value = ~0

    def accum(self, value) -> None:
        self._value &= int(value)

    @property
    def value(self) -> int:
        return self._value

    def reset(self) -> None:
        self._value = ~0

    def fresh(self) -> "BitwiseAndAccum":
        return BitwiseAndAccum()


class ListAccum(Accumulator):
    def __init__(self):
        self._items: list = []

    def accum(self, value) -> None:
        if isinstance(value, (list, tuple)):
            self._items.extend(value)
        else:
            self._items.append(value)

    @property
    def value(self) -> list:
        return self._items

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self):
        return iter(self._items)

    def reset(self) -> None:
        self._items = []

    def fresh(self) -> "ListAccum":
        return ListAccum()


class SetAccum(Accumulator):
    def __init__(self):
        self._items: set = set()

    def accum(self, value) -> None:
        if isinstance(value, (set, frozenset, list, tuple)):
            self._items.update(value)
        else:
            self._items.add(value)

    @property
    def value(self) -> set:
        return self._items

    def __len__(self) -> int:
        return len(self._items)

    def __contains__(self, item) -> bool:
        return item in self._items

    def __iter__(self):
        return iter(self._items)

    def reset(self) -> None:
        self._items = set()

    def fresh(self) -> "SetAccum":
        return SetAccum()


class MapAccum(Accumulator):
    """``MapAccum<K, V>``: keyed aggregation; values may themselves accumulate.

    ``accum((key, value))`` stores/overwrites by default; when constructed
    with ``value_accum`` (an accumulator factory), values are merged through
    that accumulator, matching GSQL's ``MapAccum<K, SumAccum<INT>>`` idiom.
    """

    def __init__(self, value_accum: Callable[[], Accumulator] | None = None):
        self._value_accum = value_accum
        self._map: dict = {}

    def accum(self, value) -> None:
        if not (isinstance(value, tuple) and len(value) == 2):
            raise ReproError("MapAccum expects (key, value) pairs")
        key, val = value
        if self._value_accum is None:
            self._map[key] = val
        else:
            if key not in self._map:
                self._map[key] = self._value_accum()
            self._map[key].accum(val)

    def put(self, key, val) -> None:
        self.accum((key, val))

    def get(self, key, default=None):
        entry = self._map.get(key, default)
        if isinstance(entry, Accumulator):
            return entry.value
        return entry

    @property
    def value(self) -> dict:
        if self._value_accum is None:
            return self._map
        return {k: v.value for k, v in self._map.items()}

    def __len__(self) -> int:
        return len(self._map)

    def __contains__(self, key) -> bool:
        return key in self._map

    def items(self):
        return self.value.items()

    def reset(self) -> None:
        self._map = {}

    def fresh(self) -> "MapAccum":
        return MapAccum(self._value_accum)


class HeapAccum(Accumulator):
    """Bounded top-k heap ordered by a sort key.

    ``HeapAccum<Tuple>(k, key ASC)`` in GSQL.  ``accum((sort_key, payload))``
    keeps the ``k`` entries with the smallest (``ascending=True``) or largest
    sort keys.  ``value`` returns entries sorted by key.  The global heap
    used for vector similarity joins on graph patterns (Sec. 5.4) is exactly
    this accumulator with ``ascending=True`` over distances.
    """

    def __init__(self, k: int, ascending: bool = True):
        if k <= 0:
            raise ReproError("HeapAccum requires k > 0")
        self.k = k
        self.ascending = ascending
        self._heap: list[tuple] = []
        self._counter = itertools.count()  # tie-break so payloads never compare

    def accum(self, value) -> None:
        if not (isinstance(value, tuple) and len(value) == 2):
            raise ReproError("HeapAccum expects (sort_key, payload) pairs")
        sort_key, payload = value
        # Keep-smallest uses a max-heap (negated keys) so the worst element
        # is at the root and can be evicted in O(log k).
        heap_key = -sort_key if self.ascending else sort_key
        entry = (heap_key, next(self._counter), payload)
        if len(self._heap) < self.k:
            heapq.heappush(self._heap, entry)
        elif entry[0] > self._heap[0][0]:
            heapq.heapreplace(self._heap, entry)

    @property
    def value(self) -> list[tuple]:
        """Entries as ``(sort_key, payload)`` sorted best-first."""
        entries = [
            ((-hk if self.ascending else hk), payload) for hk, _, payload in self._heap
        ]
        entries.sort(key=lambda e: e[0], reverse=not self.ascending)
        return entries

    @property
    def worst_key(self):
        """Sort key of the current k-th entry (None until the heap is full)."""
        if len(self._heap) < self.k:
            return None
        hk = self._heap[0][0]
        return -hk if self.ascending else hk

    def __len__(self) -> int:
        return len(self._heap)

    def merge(self, other: "HeapAccum") -> None:
        """Fold another heap in (used for the global merge of local top-k)."""
        for sort_key, payload in other.value:
            self.accum((sort_key, payload))

    def reset(self) -> None:
        self._heap = []

    def fresh(self) -> "HeapAccum":
        return HeapAccum(self.k, self.ascending)


class VertexAccumMap:
    """Vertex-local accumulators: one lazily-created instance per vertex key."""

    def __init__(self, factory: Callable[[], Accumulator]):
        self._factory = factory
        self._per_vertex: dict = {}

    def for_vertex(self, vertex_key) -> Accumulator:
        accum = self._per_vertex.get(vertex_key)
        if accum is None:
            accum = self._factory()
            self._per_vertex[vertex_key] = accum
        return accum

    def get(self, vertex_key, default=None):
        accum = self._per_vertex.get(vertex_key)
        return default if accum is None else accum.value

    def items(self):
        return ((k, v.value) for k, v in self._per_vertex.items())

    def __len__(self) -> int:
        return len(self._per_vertex)

    def reset(self) -> None:
        self._per_vertex = {}


_ACCUM_FACTORIES: dict[str, Callable[..., Accumulator]] = {
    "SumAccum": SumAccum,
    "MinAccum": MinAccum,
    "MaxAccum": MaxAccum,
    "AvgAccum": AvgAccum,
    "OrAccum": OrAccum,
    "AndAccum": AndAccum,
    "BitwiseOrAccum": BitwiseOrAccum,
    "BitwiseAndAccum": BitwiseAndAccum,
    "ListAccum": ListAccum,
    "SetAccum": SetAccum,
    "MapAccum": MapAccum,
    "HeapAccum": HeapAccum,
    "Map": MapAccum,  # the paper writes `Map<VERTEX, FLOAT> @@disMap`
}


def make_accumulator(kind: str, *args, **kwargs) -> Accumulator:
    """Factory used by the GSQL executor for accumulator declarations."""
    try:
        factory = _ACCUM_FACTORIES[kind]
    except KeyError:
        raise ReproError(f"unknown accumulator type '{kind}'") from None
    return factory(*args, **kwargs)
