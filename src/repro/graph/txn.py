"""Transactions and snapshots (MVCC, paper Sec. 4.3).

A :class:`Transaction` buffers all writes; nothing is visible until commit.
At commit the store's commit lock serializes TID assignment, the operation
list is WAL-logged, graph mutations become segment deltas, and embedding
mutations are forwarded — under the *same* TID — to the embedding service's
delta store.  That shared TID is what makes mixed graph/vector updates
atomic, one of the paper's headline guarantees.

A :class:`Snapshot` pins a read TID.  It registers itself with the store so
the vacuum knows which old segment/index versions are still reachable, and
must be released (use it as a context manager) to let garbage collection
proceed.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterable, Iterator

import numpy as np

from ..errors import TransactionError, UnknownTypeError
from .segment import SegmentState, reverse_edge_key

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .storage import GraphStore

__all__ = ["Snapshot", "Transaction"]


class Transaction:
    """A buffered read-write transaction.

    Operations (all keyed by primary key; vids are an internal detail):

    - :meth:`upsert_vertex` / :meth:`delete_vertex`
    - :meth:`add_edge` / :meth:`delete_edge`
    - :meth:`set_embedding` / :meth:`delete_embedding`
    """

    def __init__(self, store: "GraphStore"):
        self._store = store
        self._ops: list[tuple] = []
        self._state = "active"
        self.tid: int | None = None

    # ------------------------------------------------------------- helpers
    def _check_active(self) -> None:
        if self._state != "active":
            raise TransactionError(f"transaction is {self._state}; no further writes allowed")

    @property
    def pending_ops(self) -> int:
        return len(self._ops)

    # ------------------------------------------------------------- vertices
    def upsert_vertex(self, vertex_type: str, pk: Any, attrs: dict[str, Any] | None = None) -> None:
        self._check_active()
        vtype = self._store.schema.vertex_type(vertex_type)
        attrs = dict(attrs or {})
        for name in attrs:
            if name not in vtype.attributes:
                raise UnknownTypeError(f"vertex '{vertex_type}' has no attribute '{name}'")
        attrs.setdefault(vtype.primary_key, pk)
        self._ops.append(("upsert_vertex", vertex_type, pk, attrs))

    def delete_vertex(self, vertex_type: str, pk: Any) -> None:
        self._check_active()
        self._store.schema.vertex_type(vertex_type)
        self._ops.append(("delete_vertex", vertex_type, pk))

    # --------------------------------------------------------------- edges
    def add_edge(
        self,
        edge_type: str,
        from_pk: Any,
        to_pk: Any,
        attrs: dict[str, Any] | None = None,
    ) -> None:
        self._check_active()
        self._store.schema.edge_type(edge_type)
        self._ops.append(("add_edge", edge_type, from_pk, to_pk, dict(attrs or {})))

    def delete_edge(self, edge_type: str, from_pk: Any, to_pk: Any) -> None:
        self._check_active()
        self._store.schema.edge_type(edge_type)
        self._ops.append(("delete_edge", edge_type, from_pk, to_pk))

    # ----------------------------------------------------------- embeddings
    def set_embedding(self, vertex_type: str, pk: Any, attr: str, vector) -> None:
        """Upsert a vector; validated against the embedding type's metadata."""
        self._check_active()
        etype = self._store.schema.vertex_type(vertex_type).embedding(attr)
        arr = etype.validate_vector(np.asarray(vector))
        self._ops.append(("set_embedding", vertex_type, pk, attr, arr))

    def delete_embedding(self, vertex_type: str, pk: Any, attr: str) -> None:
        self._check_active()
        self._store.schema.vertex_type(vertex_type).embedding(attr)
        self._ops.append(("delete_embedding", vertex_type, pk, attr))

    # ------------------------------------------------------------ lifecycle
    def commit(self) -> int:
        """Atomically apply all buffered operations; returns the TID."""
        self._check_active()
        tid = self._store._commit(self._ops)
        self._state = "committed"
        self.tid = tid
        return tid

    def rollback(self) -> None:
        self._check_active()
        self._ops.clear()
        self._state = "aborted"

    def __enter__(self) -> "Transaction":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._state != "active":
            return
        if exc_type is None:
            self.commit()
        else:
            self.rollback()


class Snapshot:
    """A consistent read view of the whole store at one TID."""

    def __init__(self, store: "GraphStore", tid: int):
        self._store = store
        self.tid = tid
        self._released = False
        self._state_cache: dict[tuple[str, int], SegmentState] = {}

    # ------------------------------------------------------------- plumbing
    def release(self) -> None:
        if not self._released:
            self._store._release_snapshot(self)
            self._released = True

    def __enter__(self) -> "Snapshot":
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()

    def _segment_state(self, vertex_type: str, seg_no: int) -> SegmentState:
        key = (vertex_type, seg_no)
        state = self._state_cache.get(key)
        if state is None:
            segment = self._store._segment(vertex_type, seg_no)
            state = segment.read_state(self.tid)
            self._state_cache[key] = state
        return state

    def _locate(self, vertex_type: str, vid: int) -> tuple[SegmentState, int]:
        capacity = self._store.segment_size
        return self._segment_state(vertex_type, vid // capacity), vid % capacity

    # ---------------------------------------------------------------- reads
    def vid_for_pk(self, vertex_type: str, pk: Any) -> int | None:
        vid = self._store._pk_index.get(vertex_type, {}).get(pk)
        if vid is None:
            return None
        state, offset = self._locate(vertex_type, vid)
        return vid if state.exists(offset) else None

    def vertex_exists(self, vertex_type: str, vid: int) -> bool:
        state, offset = self._locate(vertex_type, vid)
        return state.exists(offset)

    def get_attr(self, vertex_type: str, vid: int, name: str) -> Any:
        state, offset = self._locate(vertex_type, vid)
        return state.get_attr(offset, name) if state.exists(offset) else None

    def get_vertex(self, vertex_type: str, vid: int) -> dict[str, Any] | None:
        state, offset = self._locate(vertex_type, vid)
        return state.get_row(offset) if state.exists(offset) else None

    def neighbors(
        self,
        vertex_type: str,
        vid: int,
        edge_type: str,
        reverse: bool = False,
        with_attrs: bool = False,
    ) -> list:
        """Out-neighbors (or in-neighbors with ``reverse=True``) of one vertex.

        Returns target vids, or ``(vid, attrs)`` pairs when ``with_attrs``.
        """
        state, offset = self._locate(vertex_type, vid)
        if not state.exists(offset):
            return []
        key = reverse_edge_key(edge_type) if reverse else edge_type
        pairs = state.neighbors(offset, key)
        if with_attrs:
            return list(pairs)
        return [target for target, _ in pairs]

    def degree(self, vertex_type: str, vid: int, edge_type: str, reverse: bool = False) -> int:
        return len(self.neighbors(vertex_type, vid, edge_type, reverse=reverse))

    def num_segments(self, vertex_type: str) -> int:
        return self._store._num_segments(vertex_type)

    def segment_state(self, vertex_type: str, seg_no: int) -> SegmentState:
        """Expose the per-segment view; used by MPP actions and vector search."""
        return self._segment_state(vertex_type, seg_no)

    def iter_vids(self, vertex_type: str) -> Iterator[int]:
        capacity = self._store.segment_size
        for seg_no in range(self._store._num_segments(vertex_type)):
            state = self._segment_state(vertex_type, seg_no)
            base = seg_no * capacity
            for offset in state.iter_live_offsets():
                yield base + offset

    def count(self, vertex_type: str) -> int:
        return sum(1 for _ in self.iter_vids(vertex_type))

    def scan(self, vertex_type: str, predicate=None) -> Iterator[tuple[int, dict[str, Any]]]:
        """Yield ``(vid, attrs)`` for live vertices, optionally filtered."""
        capacity = self._store.segment_size
        for seg_no in range(self._store._num_segments(vertex_type)):
            state = self._segment_state(vertex_type, seg_no)
            base = seg_no * capacity
            for offset in state.iter_live_offsets():
                row = state.get_row(offset)
                if predicate is None or predicate(row):
                    yield base + offset, row

    def valid_bitmaps(self, vertex_type: str) -> list[np.ndarray]:
        """Per-segment live-vertex masks — the reusable status bitmap of Sec. 5.1."""
        return [
            self._segment_state(vertex_type, seg_no).valid_mask()
            for seg_no in range(self._store._num_segments(vertex_type))
        ]

    def bitmap_from_vids(self, vertex_type: str, vids: Iterable[int]) -> list[np.ndarray]:
        """Per-segment masks marking exactly the given vids (pre-filter input)."""
        capacity = self._store.segment_size
        masks = [
            np.zeros(capacity, dtype=bool)
            for _ in range(self._store._num_segments(vertex_type))
        ]
        for vid in vids:
            seg_no, offset = divmod(vid, capacity)
            if seg_no < len(masks):
                masks[seg_no][offset] = True
        return masks
