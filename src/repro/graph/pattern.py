"""Graph pattern matching for GSQL FROM clauses.

Supports the path patterns the paper uses, e.g.::

    (s:Person) - [:knows] -> (:Person) <- [:hasCreator] - (t:Post)

with aliases, per-alias attribute filters (predicate pushdown from the WHERE
clause), repeated hops (``[:knows*3]`` — how the hybrid-search benchmark
varies path length), vertex-set variables as node labels (query
composition), and both traversal directions.

Two evaluation modes:

- :func:`match_frontier` — set semantics: the distinct vertices binding each
  alias position, computed by frontier expansion (no binding blow-up; this
  is what collecting the Message candidate set in Sec. 6.5 needs);
- :func:`match_bindings` — bag-of-bindings semantics: every concrete path,
  enumerated depth-first (what vector similarity joins need, Sec. 5.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

from ..errors import GSQLSemanticError, UnknownTypeError
from .schema import GraphSchema
from .txn import Snapshot
from .vertex_set import VertexSet

__all__ = ["EdgeHop", "NodePattern", "PathPattern", "match_bindings", "match_frontier"]

#: Per-alias node predicate: fn(vid, attrs) -> bool.
NodeFilter = Callable[[int, dict[str, Any]], bool]


@dataclass(frozen=True)
class NodePattern:
    """``(alias:Label)`` — label is a vertex type or a vertex-set variable."""

    alias: str | None = None
    label: str | None = None


@dataclass(frozen=True)
class EdgeHop:
    """``-[:etype]->`` / ``<-[:etype]-`` with an optional repeat count."""

    edge_type: str
    direction: str = "out"  # "out" (->) or "in" (<-)
    repeat: int = 1

    def __post_init__(self) -> None:
        if self.direction not in ("out", "in"):
            raise GSQLSemanticError(f"invalid edge direction '{self.direction}'")
        if self.repeat < 1:
            raise GSQLSemanticError("edge repeat count must be >= 1")


@dataclass
class PathPattern:
    """Alternating nodes and hops: ``nodes[0] hops[0] nodes[1] ...``."""

    nodes: list[NodePattern]
    hops: list[EdgeHop] = field(default_factory=list)

    def __post_init__(self) -> None:
        if len(self.nodes) != len(self.hops) + 1:
            raise GSQLSemanticError("pattern must alternate nodes and edges")

    def aliases(self) -> list[str]:
        return [n.alias for n in self.nodes if n.alias]

    def expanded_hops(self) -> list[EdgeHop]:
        """Unroll repeat counts into unit hops."""
        out: list[EdgeHop] = []
        for hop in self.hops:
            out.extend(EdgeHop(hop.edge_type, hop.direction) for _ in range(hop.repeat))
        return out

    def expanded_positions(self) -> list[NodePattern]:
        """Node patterns aligned with :meth:`expanded_hops` (+1 length).

        Unrolled intermediate positions are anonymous and unlabeled.
        """
        out: list[NodePattern] = [self.nodes[0]]
        for hop, node in zip(self.hops, self.nodes[1:]):
            out.extend(NodePattern() for _ in range(hop.repeat - 1))
            out.append(node)
        return out


def _hop_types(schema: GraphSchema, hop: EdgeHop) -> tuple[str, str]:
    """(source_type, target_type) for traversing ``hop`` forward."""
    etype = schema.edge_type(hop.edge_type)
    if hop.direction == "out":
        return etype.from_type, etype.to_type
    return etype.to_type, etype.from_type


def _initial_members(
    snapshot: Snapshot,
    schema: GraphSchema,
    node: NodePattern,
    expected_type: str | None,
    resolve_set: Callable[[str], VertexSet | None],
    node_filter: NodeFilter | None,
) -> set[tuple[str, int]]:
    """Candidate (type, vid) members for a pattern's first position."""
    members: set[tuple[str, int]] = set()
    label = node.label
    vset = resolve_set(label) if label else None
    if vset is not None:
        for vtype, vid in vset:
            if expected_type is not None and vtype != expected_type:
                continue
            if node_filter is not None:
                row = snapshot.get_vertex(vtype, vid)
                if row is None:
                    continue
                row["_type"] = vtype  # expose the member type to filters
                if not node_filter(vid, row):
                    continue
            elif not snapshot.vertex_exists(vtype, vid):
                continue
            members.add((vtype, vid))
        return members
    vertex_type = label or expected_type
    if vertex_type is None:
        raise GSQLSemanticError("cannot infer the vertex type of the pattern's first node")
    if label and expected_type and label != expected_type:
        raise GSQLSemanticError(
            f"node labeled '{label}' cannot start edge requiring '{expected_type}'"
        )
    for vid, row in snapshot.scan(vertex_type):
        row["_type"] = vertex_type
        if node_filter is None or node_filter(vid, row):
            members.add((vertex_type, vid))
    return members


def _node_ok(
    snapshot: Snapshot,
    member: tuple[str, int],
    node: NodePattern,
    expected_type: str | None,
    resolve_set: Callable[[str], VertexSet | None],
    node_filter: NodeFilter | None,
) -> bool:
    vtype, vid = member
    if expected_type is not None and vtype != expected_type:
        return False
    if node.label:
        vset = resolve_set(node.label)
        if vset is not None:
            if member not in vset:
                return False
        elif node.label != vtype:
            return False
    if node_filter is not None:
        row = snapshot.get_vertex(vtype, vid)
        if row is None:
            return False
        row["_type"] = vtype
        return node_filter(vid, row)
    return True


def match_frontier(
    snapshot: Snapshot,
    schema: GraphSchema,
    pattern: PathPattern,
    node_filters: dict[str, NodeFilter] | None = None,
    resolve_set: Callable[[str], VertexSet | None] | None = None,
) -> dict[str, VertexSet]:
    """Distinct vertices binding each alias, by forward frontier expansion.

    Note the frontier semantics: an aliased position's set contains vertices
    reachable through the pattern *prefix*; suffix constraints do not prune
    earlier positions (GSQL's post-accum semantics for the final alias — the
    one hybrid queries collect — are exact).
    """
    node_filters = node_filters or {}
    resolve_set = resolve_set or (lambda name: None)
    positions = pattern.expanded_positions()
    hops = pattern.expanded_hops()

    first = positions[0]
    expected = _hop_types(schema, hops[0])[0] if hops else None
    frontier = _initial_members(
        snapshot, schema, first, expected,
        resolve_set, node_filters.get(first.alias or ""),
    )
    result: dict[str, VertexSet] = {}
    if first.alias:
        result[first.alias] = VertexSet(frontier, name=first.alias)

    for hop, node in zip(hops, positions[1:]):
        src_type, dst_type = _hop_types(schema, hop)
        reverse = hop.direction == "in"
        next_frontier: set[tuple[str, int]] = set()
        node_filter = node_filters.get(node.alias or "")
        for vtype, vid in frontier:
            if vtype != src_type:
                continue
            for target in snapshot.neighbors(vtype, vid, hop.edge_type, reverse=reverse):
                member = (dst_type, target)
                if member in next_frontier:
                    continue
                if _node_ok(snapshot, member, node, dst_type, resolve_set, node_filter):
                    next_frontier.add(member)
        frontier = next_frontier
        if node.alias:
            result[node.alias] = VertexSet(frontier, name=node.alias)
        if not frontier:
            break
    for node in positions:
        if node.alias and node.alias not in result:
            result[node.alias] = VertexSet(name=node.alias)
    return result


def match_bindings(
    snapshot: Snapshot,
    schema: GraphSchema,
    pattern: PathPattern,
    node_filters: dict[str, NodeFilter] | None = None,
    resolve_set: Callable[[str], VertexSet | None] | None = None,
    limit: int | None = None,
) -> Iterator[dict[str, tuple[str, int]]]:
    """Enumerate concrete path bindings depth-first.

    Yields ``{alias: (vertex_type, vid)}`` for every matched path (duplicate
    alias projections possible, as in SQL join semantics — callers dedup).
    Used by vector similarity joins, where matched paths are sparse enough
    for brute-force pair scoring (Sec. 5.4).
    """
    node_filters = node_filters or {}
    resolve_set = resolve_set or (lambda name: None)
    positions = pattern.expanded_positions()
    hops = pattern.expanded_hops()

    first = positions[0]
    expected = _hop_types(schema, hops[0])[0] if hops else None
    start = _initial_members(
        snapshot, schema, first, expected,
        resolve_set, node_filters.get(first.alias or ""),
    )

    emitted = 0

    def extend(
        index: int, member: tuple[str, int], binding: dict[str, tuple[str, int]]
    ) -> Iterator[dict[str, tuple[str, int]]]:
        nonlocal emitted
        if index == len(hops):
            yield dict(binding)
            return
        hop = hops[index]
        node = positions[index + 1]
        src_type, dst_type = _hop_types(schema, hop)
        vtype, vid = member
        if vtype != src_type:
            return
        reverse = hop.direction == "in"
        node_filter = node_filters.get(node.alias or "")
        for target in snapshot.neighbors(vtype, vid, hop.edge_type, reverse=reverse):
            nxt = (dst_type, target)
            if not _node_ok(snapshot, nxt, node, dst_type, resolve_set, node_filter):
                continue
            if node.alias:
                binding[node.alias] = nxt
            yield from extend(index + 1, nxt, binding)
            if node.alias:
                del binding[node.alias]

    for member in start:
        binding: dict[str, tuple[str, int]] = {}
        if first.alias:
            binding[first.alias] = member
        for result in extend(0, member, binding):
            yield result
            emitted += 1
            if limit is not None and emitted >= limit:
                return
