"""GSQL query planner.

Lowers an analyzed SELECT block into a physical plan whose operators match
the paper's notation.  Plans are small dataclasses executed by
:mod:`repro.gsql.executor`; ``explain()`` renders them bottom-up exactly like
the paper's examples, e.g. for filtered search (Sec. 5.2)::

    EmbeddingAction[Top k, {s.content_emb}, query_vector]
    VertexAction[Post:s {s.language = "English"}]
"""

from __future__ import annotations

from dataclasses import dataclass, field

from . import ast_nodes as ast
from .semantic import SelectInfo

__all__ = ["Plan", "PlanStep", "build_plan", "render_expr"]


def render_expr(expr: ast.Expr | None) -> str:
    """Pretty-print an expression for EXPLAIN output."""
    if expr is None:
        return ""
    if isinstance(expr, ast.Literal):
        return repr(expr.value) if isinstance(expr.value, str) else str(expr.value)
    if isinstance(expr, ast.VarRef):
        return expr.name
    if isinstance(expr, ast.AttrRef):
        return f"{expr.alias}.{expr.attr}"
    if isinstance(expr, ast.AccumRef):
        prefix = "@@" if expr.is_global else f"{expr.alias}.@"
        return f"{prefix}{expr.name}"
    if isinstance(expr, ast.BinaryOp):
        op = "=" if expr.op == "==" else expr.op
        return f"{render_expr(expr.left)} {op} {render_expr(expr.right)}"
    if isinstance(expr, ast.UnaryOp):
        return f"{expr.op} {render_expr(expr.operand)}"
    if isinstance(expr, ast.FuncCall):
        return f"{expr.name}({', '.join(render_expr(a) for a in expr.args)})"
    if isinstance(expr, ast.ListLiteral):
        return f"[{', '.join(render_expr(i) for i in expr.items)}]"
    if isinstance(expr, ast.VectorAttrSet):
        return "{" + ", ".join(a.qualified for a in expr.attrs) + "}"
    if isinstance(expr, ast.MapLiteral):
        return "{" + ", ".join(f"{e.key}: {render_expr(e.value)}" for e in expr.entries) + "}"
    if isinstance(expr, ast.SelectBlock):
        return "<select-block>"
    return f"<{type(expr).__name__}>"


@dataclass
class PlanStep:
    """One physical operator; ``describe`` matches the paper's plan syntax."""

    op: str  # EmbeddingAction | VertexAction | EdgeAction | HeapMerge
    describe: str


@dataclass
class Plan:
    """A bottom-up operator list (last element executes first)."""

    shape: str
    info: SelectInfo
    steps: list[PlanStep] = field(default_factory=list)

    def explain(self) -> str:
        return "\n".join(step.describe for step in self.steps)


def _pattern_steps(info: SelectInfo) -> list[PlanStep]:
    """VertexAction/EdgeAction steps for the pattern + pushdown filters."""
    steps: list[PlanStep] = []
    pattern = info.block.pattern
    for i, node in enumerate(pattern.nodes):
        alias = node.alias or f"_{i}"
        label = node.label or info.alias_types.get(node.alias or "", None) or "?"
        filters = info.pushdown.get(node.alias or "", [])
        cond = " {" + " AND ".join(render_expr(f) for f in filters) + "}" if filters else ""
        steps.append(PlanStep("VertexAction", f"VertexAction[{label}:{alias}{cond}]"))
        if i < len(pattern.edges):
            edge = pattern.edges[i]
            arrow = {"out": "->", "in": "<-", "any": "--"}[edge.direction]
            rep = f"*{edge.repeat}" if edge.repeat > 1 else ""
            steps.append(
                PlanStep("EdgeAction", f"EdgeAction[{edge.edge_type}{rep} {arrow}]")
            )
    steps.reverse()  # execution proceeds bottom-up, paper-style
    return steps


def build_plan(info: SelectInfo) -> Plan:
    """Build the physical plan for one analyzed SELECT block."""
    plan = Plan(shape=info.shape, info=info)
    vec = info.vector
    if info.shape == "pure":
        assert vec is not None
        plan.steps.append(
            PlanStep(
                "EmbeddingAction",
                f"EmbeddingAction[Top {render_expr(vec.k_expr)}, "
                f"{{{vec.alias}.{vec.attr}}}, {render_expr(vec.query_expr)}]",
            )
        )
    elif info.shape == "filtered":
        assert vec is not None
        plan.steps.append(
            PlanStep(
                "EmbeddingAction",
                f"EmbeddingAction[Top {render_expr(vec.k_expr)}, "
                f"{{{vec.alias}.{vec.attr}}}, {render_expr(vec.query_expr)}]",
            )
        )
        plan.steps.extend(_pattern_steps(info))
    elif info.shape == "range":
        assert vec is not None
        plan.steps.append(
            PlanStep(
                "EmbeddingAction",
                f"EmbeddingAction[Range {render_expr(vec.threshold_expr)}, "
                f"{{{vec.alias}.{vec.attr}}}, {render_expr(vec.query_expr)}]",
            )
        )
        if len(info.block.pattern.nodes) > 1 or info.pushdown or info.residual:
            plan.steps.extend(_pattern_steps(info))
    elif info.shape == "similarity_join":
        assert vec is not None
        plan.steps.append(
            PlanStep(
                "HeapMerge",
                f"HeapAccum[Top {render_expr(vec.k_expr)}, "
                f"VECTOR_DIST({vec.alias}.{vec.attr}, {vec.right_alias}.{vec.right_attr})]",
            )
        )
        plan.steps.extend(_pattern_steps(info))
    else:  # plain graph block
        plan.steps.extend(_pattern_steps(info))
    return plan
