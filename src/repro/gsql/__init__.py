"""GSQL: TigerGraph's declarative graph query language, extended for vectors.

This package implements the GSQL subset the paper exercises:

- DDL: ``CREATE VERTEX`` / ``CREATE ... EDGE`` / ``ALTER VERTEX ... ADD
  EMBEDDING ATTRIBUTE`` / ``CREATE EMBEDDING SPACE`` / loading jobs;
- single query blocks: ``SELECT ... FROM <pattern> [WHERE ...]
  [ORDER BY VECTOR_DIST(...) LIMIT k]`` covering pure, filtered, range,
  graph-pattern, and similarity-join vector search (Sec. 5.1–5.4);
- query procedures (``CREATE QUERY``): accumulators, vertex-set variables,
  ``VectorSearch()``, FOREACH/IF/WHILE, PRINT (Sec. 5.5, queries Q2–Q4).

Pipeline: :mod:`lexer` → :mod:`parser` (AST in :mod:`ast_nodes`) →
:mod:`semantic` (static analysis, incl. embedding compatibility) →
:mod:`planner` (VertexAction / EmbeddingAction plans) → :mod:`executor`.
:class:`~repro.gsql.session.GSQLSession` is the entry point.
"""

from .session import GSQLSession, QueryResult

__all__ = ["GSQLSession", "QueryResult"]
