"""GSQL recursive-descent parser.

Parses the GSQL subset shown in the paper into the AST of
:mod:`repro.gsql.ast_nodes`.  Entry point: :func:`parse`, which returns a
list of top-level nodes (DDL statements, bare SELECT blocks, ``CREATE
QUERY`` procedures, loading jobs).
"""

from __future__ import annotations

from typing import Any

from ..errors import GSQLParseError
from . import ast_nodes as ast
from .lexer import Token, tokenize

__all__ = ["parse", "parse_expression"]

#: Accumulator type names recognized in declarations.
ACCUM_KINDS = {
    "SumAccum", "MinAccum", "MaxAccum", "AvgAccum", "OrAccum", "AndAccum",
    "BitwiseOrAccum", "BitwiseAndAccum", "ListAccum", "SetAccum", "MapAccum",
    "HeapAccum", "Map",
}


class _Parser:
    def __init__(self, tokens: list[Token]):
        self.tokens = tokens
        self.pos = 0

    # ------------------------------------------------------------- plumbing
    @property
    def current(self) -> Token:
        return self.tokens[self.pos]

    def peek(self, offset: int = 1) -> Token:
        index = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def advance(self) -> Token:
        token = self.current
        if token.kind != "EOF":
            self.pos += 1
        return token

    def error(self, message: str) -> GSQLParseError:
        tok = self.current
        shown = tok.value or "<eof>"
        return GSQLParseError(f"{message} (found {shown!r})", tok.line, tok.column)

    def expect_kw(self, word: str) -> Token:
        if not self.current.is_kw(word):
            raise self.error(f"expected {word}")
        return self.advance()

    def expect_op(self, op: str) -> Token:
        if not self.current.is_op(op):
            raise self.error(f"expected '{op}'")
        return self.advance()

    def expect_ident(self) -> str:
        if self.current.kind == "IDENT":
            return self.advance().value
        # Unreserved-ish keywords usable as names (e.g. a vertex called Graph)
        raise self.error("expected an identifier")

    def accept_op(self, op: str) -> bool:
        if self.current.is_op(op):
            self.advance()
            return True
        return False

    def accept_kw(self, word: str) -> bool:
        if self.current.is_kw(word):
            self.advance()
            return True
        return False

    # ------------------------------------------------------------ top level
    def parse_program(self) -> list:
        nodes = []
        while self.current.kind != "EOF":
            nodes.append(self.parse_top_level())
            while self.accept_op(";"):
                pass
        return nodes

    def parse_top_level(self):
        tok = self.current
        if tok.is_kw("CREATE"):
            nxt = self.peek()
            if nxt.is_kw("VERTEX"):
                return self.parse_create_vertex()
            if nxt.is_kw("DIRECTED") or nxt.is_kw("UNDIRECTED") or nxt.is_kw("EDGE"):
                return self.parse_create_edge()
            if nxt.is_kw("EMBEDDING"):
                return self.parse_create_embedding_space()
            if nxt.is_kw("QUERY"):
                return self.parse_create_query()
            if nxt.is_kw("LOADING") or (nxt.kind == "IDENT" and nxt.value.lower() == "loading"):
                return self.parse_create_loading_job()
            raise self.error("unsupported CREATE statement")
        if tok.is_kw("ALTER"):
            return self.parse_alter_vertex()
        if tok.is_kw("RUN"):
            return self.parse_run_loading_job()
        if tok.is_kw("SELECT"):
            return self.parse_select_block()
        if tok.is_kw("INSERT"):
            return self.parse_insert()
        if tok.is_kw("DELETE"):
            return self.parse_delete()
        raise self.error("expected a DDL statement, SELECT block, or CREATE QUERY")

    # ------------------------------------------------------------------ DML
    def parse_insert(self):
        self.expect_kw("INSERT")
        self.expect_kw("INTO")
        is_edge = self.accept_kw("EDGE")
        if not is_edge:
            self.accept_kw("VERTEX")
        name = self.expect_ident()
        self.expect_kw("VALUES")
        self.expect_op("(")
        values: list[ast.Expr] = []
        while not self.current.is_op(")"):
            values.append(self.parse_expr())
            if not self.accept_op(","):
                break
        self.expect_op(")")
        if is_edge:
            return ast.InsertEdge(name, values)
        return ast.InsertVertex(name, values)

    def parse_delete(self):
        self.expect_kw("DELETE")
        self.expect_kw("FROM")
        name = self.expect_ident()
        alias = "v"
        if self.accept_kw("AS") or (
            self.current.kind == "IDENT" and not self.current.is_kw("WHERE")
        ):
            if self.current.kind == "IDENT":
                alias = self.advance().value
        where = None
        if self.accept_kw("WHERE"):
            where = self.parse_expr()
        return ast.DeleteVertex(name, alias, where)

    # ------------------------------------------------------------------ DDL
    def _type_word(self) -> str:
        """A type name may be an identifier or a keyword (VERTEX, EDGE, ...)."""
        tok = self.current
        if tok.kind in ("IDENT", "KEYWORD"):
            self.advance()
            return tok.value
        raise self.error("expected a type name")

    def _parse_type_name(self) -> str:
        """Attribute/parameter type, e.g. ``INT`` or ``List<FLOAT>``."""
        base = self._type_word()
        if self.accept_op("<"):
            args = [self._parse_type_name()]
            while self.accept_op(","):
                args.append(self._parse_type_name())
            self.expect_op(">")
            return f"{base}<{','.join(args)}>"
        return base

    def parse_create_vertex(self) -> ast.CreateVertex:
        self.expect_kw("CREATE")
        self.expect_kw("VERTEX")
        name = self.expect_ident()
        self.expect_op("(")
        attrs: list[ast.AttrDef] = []
        while not self.current.is_op(")"):
            attr_name = self.expect_ident()
            type_name = self._parse_type_name()
            primary = False
            if self.accept_kw("PRIMARY"):
                self.expect_kw("KEY")
                primary = True
            attrs.append(ast.AttrDef(attr_name, type_name, primary))
            if not self.accept_op(","):
                break
        self.expect_op(")")
        return ast.CreateVertex(name, attrs)

    def parse_create_edge(self) -> ast.CreateEdge:
        self.expect_kw("CREATE")
        directed = True
        if self.accept_kw("UNDIRECTED"):
            directed = False
        else:
            self.accept_kw("DIRECTED")
        self.expect_kw("EDGE")
        name = self.expect_ident()
        self.expect_op("(")
        self.expect_kw("FROM")
        from_type = self.expect_ident()
        self.expect_op(",")
        self.expect_kw("TO")
        to_type = self.expect_ident()
        attrs: list[ast.AttrDef] = []
        while self.accept_op(","):
            attr_name = self.expect_ident()
            type_name = self._parse_type_name()
            attrs.append(ast.AttrDef(attr_name, type_name))
        self.expect_op(")")
        return ast.CreateEdge(name, from_type, to_type, directed, attrs)

    def _parse_option_block(self) -> dict[str, Any]:
        """``(DIMENSION = 1024, MODEL = GPT4, ...)`` for embedding DDL."""
        self.expect_op("(")
        options: dict[str, Any] = {}
        while not self.current.is_op(")"):
            key = self.expect_ident().upper()
            self.expect_op("=")
            tok = self.advance()
            if tok.kind == "INT":
                options[key] = int(tok.value)
            elif tok.kind == "FLOAT":
                options[key] = float(tok.value)
            elif tok.kind in ("IDENT", "STRING", "KEYWORD"):
                options[key] = tok.value
            else:
                raise self.error(f"invalid option value for {key}")
            if not self.accept_op(","):
                break
        self.expect_op(")")
        return options

    def parse_alter_vertex(self) -> ast.AddEmbeddingAttr:
        self.expect_kw("ALTER")
        self.expect_kw("VERTEX")
        vertex_type = self.expect_ident()
        self.expect_kw("ADD")
        self.expect_kw("EMBEDDING")
        self.expect_kw("ATTRIBUTE")
        attr_name = self.expect_ident()
        if self.accept_kw("IN"):
            self.expect_kw("EMBEDDING")
            self.expect_kw("SPACE")
            space = self.expect_ident()
            return ast.AddEmbeddingAttr(vertex_type, attr_name, {}, space)
        options = self._parse_option_block()
        return ast.AddEmbeddingAttr(vertex_type, attr_name, options)

    def parse_create_embedding_space(self) -> ast.CreateEmbeddingSpace:
        self.expect_kw("CREATE")
        self.expect_kw("EMBEDDING")
        self.expect_kw("SPACE")
        name = self.expect_ident()
        options = self._parse_option_block()
        return ast.CreateEmbeddingSpace(name, options)

    # ------------------------------------------------------------- loading
    def parse_create_loading_job(self) -> ast.CreateLoadingJob:
        self.expect_kw("CREATE")
        if not (self.accept_kw("LOADING") or (
            self.current.kind == "IDENT" and self.current.value.lower() == "loading"
            and self.advance()
        )):
            raise self.error("expected LOADING")
        if self.current.is_kw("JOB") or (
            self.current.kind == "IDENT" and self.current.value.lower() == "job"
        ):
            self.advance()
        else:
            raise self.error("expected JOB")
        name = self.expect_ident()
        self.expect_kw("FOR")
        if self.current.is_kw("GRAPH"):
            self.advance()
        graph = self.expect_ident()
        self.expect_op("{")
        loads: list[ast.LoadClause] = []
        while not self.current.is_op("}"):
            loads.append(self.parse_load_clause())
            while self.accept_op(";"):
                pass
        self.expect_op("}")
        return ast.CreateLoadingJob(name, graph, loads)

    def parse_load_clause(self) -> ast.LoadClause:
        self.expect_kw("LOAD")
        source = self.expect_ident()
        self.expect_kw("TO")
        if self.accept_kw("VERTEX"):
            target_kind = "vertex"
            target = self.expect_ident()
            vertex_type = None
        elif self.accept_kw("EDGE"):
            target_kind = "edge"
            target = self.expect_ident()
            vertex_type = None
        elif self.accept_kw("EMBEDDING"):
            self.expect_kw("ATTRIBUTE")
            target_kind = "embedding"
            target = self.expect_ident()
            self.expect_kw("ON")
            self.expect_kw("VERTEX")
            vertex_type = self.expect_ident()
        else:
            raise self.error("expected VERTEX, EDGE, or EMBEDDING ATTRIBUTE")
        self.expect_kw("VALUES")
        self.expect_op("(")
        values: list[ast.Expr] = []
        while not self.current.is_op(")"):
            values.append(self.parse_expr())
            if not self.accept_op(","):
                break
        self.expect_op(")")
        return ast.LoadClause(source, target_kind, target, vertex_type, values)

    def parse_run_loading_job(self) -> ast.RunLoadingJob:
        self.expect_kw("RUN")
        if self.current.is_kw("LOADING") or (
            self.current.kind == "IDENT" and self.current.value.lower() == "loading"
        ):
            self.advance()
        if self.current.is_kw("JOB") or (
            self.current.kind == "IDENT" and self.current.value.lower() == "job"
        ):
            self.advance()
        name = self.expect_ident()
        files: dict[str, str] = {}
        if self.accept_kw("USING"):
            while True:
                var = self.expect_ident()
                self.expect_op("=")
                tok = self.advance()
                if tok.kind != "STRING":
                    raise self.error("file path must be a string literal")
                files[var] = tok.value
                if not self.accept_op(","):
                    break
        return ast.RunLoadingJob(name, files)

    # -------------------------------------------------------------- pattern
    def parse_path_pattern(self) -> ast.PathPatternAST:
        nodes = [self.parse_node_pattern()]
        edges: list[ast.EdgePatternAST] = []
        while self.current.is_op("-") or self.current.is_op("<-"):
            edges.append(self.parse_edge_pattern())
            nodes.append(self.parse_node_pattern())
        return ast.PathPatternAST(nodes, edges)

    def parse_node_pattern(self) -> ast.NodePatternAST:
        self.expect_op("(")
        alias = None
        label = None
        if self.current.kind == "IDENT":
            first = self.advance().value
            if self.accept_op(":"):
                alias = first
                label = self.expect_ident()
            else:
                # `(Person)` — a bare label with no alias.
                label = first
        elif self.accept_op(":"):
            label = self.expect_ident()
        self.expect_op(")")
        return ast.NodePatternAST(alias, label)

    def parse_edge_pattern(self) -> ast.EdgePatternAST:
        if self.accept_op("<-"):
            incoming = True
        else:
            self.expect_op("-")
            incoming = False
        edge_type = None
        repeat = 1
        if self.accept_op("["):
            if self.current.kind == "IDENT" and self.peek().is_op(":"):
                self.advance()  # edge alias: parsed, not yet used downstream
            if self.accept_op(":"):
                edge_type = self.expect_ident()
                if self.accept_op("*"):
                    tok = self.advance()
                    if tok.kind != "INT":
                        raise self.error("repeat count must be an integer")
                    repeat = int(tok.value)
            self.expect_op("]")
        if incoming:
            self.expect_op("-")
            return ast.EdgePatternAST(edge_type, "in", repeat)
        if self.accept_op("->"):
            return ast.EdgePatternAST(edge_type, "out", repeat)
        self.expect_op("-")
        return ast.EdgePatternAST(edge_type, "any", repeat)

    # --------------------------------------------------------- select block
    def parse_select_block(self) -> ast.SelectBlock:
        self.expect_kw("SELECT")
        distinct = self.accept_kw("DISTINCT")
        select = [self.expect_ident()]
        while self.accept_op(","):
            select.append(self.expect_ident())
        self.expect_kw("FROM")
        pattern = self.parse_path_pattern()
        where = None
        accum: list[ast.AccumStmt] = []
        post_accum: list[ast.AccumStmt] = []
        order_by = None
        limit = None
        while True:
            if self.accept_kw("WHERE"):
                where = self.parse_expr()
            elif self.accept_kw("ACCUM"):
                accum = self.parse_accum_list()
            elif (
                self.current.kind == "IDENT"
                and self.current.value.upper() == "POST"
                and self.peek().is_op("-")
                and self.peek(2).is_kw("ACCUM")
            ):
                self.advance()
                self.advance()
                self.advance()
                post_accum = self.parse_accum_list()
            elif self.accept_kw("ORDER"):
                self.expect_kw("BY")
                expr = self.parse_expr()
                ascending = True
                if self.accept_kw("DESC"):
                    ascending = False
                else:
                    self.accept_kw("ASC")
                order_by = ast.OrderBy(expr, ascending)
            elif self.accept_kw("LIMIT"):
                limit = self.parse_expr()
            else:
                break
        return ast.SelectBlock(
            select, pattern, where, accum, post_accum, order_by, limit, distinct
        )

    def parse_accum_list(self) -> list[ast.AccumStmt]:
        stmts = [self.parse_accum_stmt()]
        while self.accept_op(","):
            stmts.append(self.parse_accum_stmt())
        return stmts

    def parse_accum_stmt(self) -> ast.AccumStmt:
        target = self.parse_primary()
        if not isinstance(target, ast.AccumRef):
            raise self.error("ACCUM target must be an accumulator reference")
        self.expect_op("+=")
        value = self.parse_expr()
        return ast.AccumStmt(target, value)

    # ------------------------------------------------------------ procedure
    def parse_create_query(self) -> ast.CreateQuery:
        self.expect_kw("CREATE")
        self.expect_kw("QUERY")
        name = self.expect_ident()
        self.expect_op("(")
        params: list[ast.ParamDecl] = []
        while not self.current.is_op(")"):
            type_name = self._parse_type_name()
            param_name = self.expect_ident()
            params.append(ast.ParamDecl(param_name, type_name))
            if not self.accept_op(","):
                break
        self.expect_op(")")
        self.expect_op("{")
        accum_decls: list[ast.AccumDecl] = []
        body: list[ast.Statement] = []
        while not self.current.is_op("}"):
            decl = self.try_parse_accum_decl()
            if decl is not None:
                if body:
                    raise self.error("accumulator declarations must precede statements")
                accum_decls.append(decl)
                continue
            body.append(self.parse_statement())
        self.expect_op("}")
        return ast.CreateQuery(name, params, accum_decls, body)

    def try_parse_accum_decl(self) -> ast.AccumDecl | None:
        tok = self.current
        if tok.kind != "IDENT" or tok.value not in ACCUM_KINDS:
            return None
        start = self.pos
        kind = self.advance().value
        type_args: list[str] = []
        if self.accept_op("<"):
            type_args.append(self._parse_type_name())
            while self.accept_op(","):
                type_args.append(self._parse_type_name())
            self.expect_op(">")
        ctor_args: list[ast.Expr] = []
        if self.accept_op("("):
            while not self.current.is_op(")"):
                ctor_args.append(self.parse_expr())
                if not self.accept_op(","):
                    break
            self.expect_op(")")
        if self.current.is_op("@@"):
            self.advance()
            is_global = True
        elif self.current.is_op("@"):
            self.advance()
            is_global = False
        else:
            self.pos = start  # it was an expression after all
            return None
        name = self.expect_ident()
        self.expect_op(";")
        return ast.AccumDecl(kind, name, is_global, type_args, ctor_args)

    def parse_statement(self) -> ast.Statement:
        tok = self.current
        if tok.is_kw("PRINT"):
            self.advance()
            exprs = [self.parse_expr()]
            while self.accept_op(","):
                exprs.append(self.parse_expr())
            self.expect_op(";")
            return ast.PrintStmt(exprs)
        if tok.is_kw("FOREACH"):
            return self.parse_foreach()
        if tok.is_kw("IF"):
            return self.parse_if()
        if tok.is_kw("WHILE"):
            return self.parse_while()
        if tok.is_op("@@") or tok.is_op("@"):
            target = self.parse_primary()
            if self.accept_op("+="):
                value = self.parse_expr()
                self.expect_op(";")
                return ast.AccumulateStmt(target, value)
            raise self.error("expected '+=' after accumulator reference")
        if tok.kind == "IDENT" and self.peek().is_op("="):
            name = self.advance().value
            self.advance()  # '='
            value = self.parse_expr()
            self.expect_op(";")
            return ast.AssignStmt(name, value)
        expr = self.parse_expr()
        self.expect_op(";")
        return ast.ExprStmt(expr)

    def parse_foreach(self) -> ast.ForeachStmt:
        self.expect_kw("FOREACH")
        var = self.expect_ident()
        self.expect_kw("IN")
        if self.current.is_kw("RANGE"):
            self.advance()
            self.expect_op("[")
            range_from = self.parse_expr()
            self.expect_op(",")
            range_to = self.parse_expr()
            self.expect_op("]")
            iterable = None
        else:
            iterable = self.parse_expr()
            range_from = range_to = None
        self.expect_kw("DO")
        body = self.parse_statement_block()
        self.expect_kw("END")
        self.accept_op(";")
        return ast.ForeachStmt(var, range_from, range_to, body, iterable)

    def parse_if(self) -> ast.IfStmt:
        self.expect_kw("IF")
        condition = self.parse_expr()
        if self.current.is_kw("THEN") or (
            self.current.kind == "IDENT" and self.current.value.upper() == "THEN"
        ):
            self.advance()
        body = self.parse_statement_block(stop_kws=("END", "ELSE"))
        else_body: list[ast.Statement] = []
        if self.accept_kw("ELSE"):
            else_body = self.parse_statement_block(stop_kws=("END",))
        self.expect_kw("END")
        self.accept_op(";")
        return ast.IfStmt(condition, body, else_body)

    def parse_while(self) -> ast.WhileStmt:
        self.expect_kw("WHILE")
        condition = self.parse_expr()
        limit = None
        if self.accept_kw("LIMIT"):
            tok = self.advance()
            if tok.kind != "INT":
                raise self.error("WHILE LIMIT must be an integer")
            limit = int(tok.value)
        self.expect_kw("DO")
        body = self.parse_statement_block()
        self.expect_kw("END")
        self.accept_op(";")
        return ast.WhileStmt(condition, body, limit)

    def parse_statement_block(self, stop_kws: tuple[str, ...] = ("END",)) -> list[ast.Statement]:
        body: list[ast.Statement] = []
        while not any(self.current.is_kw(kw) for kw in stop_kws):
            if self.current.kind == "EOF":
                raise self.error(f"expected {' or '.join(stop_kws)}")
            body.append(self.parse_statement())
        return body

    # ---------------------------------------------------------- expressions
    def parse_expr(self) -> ast.Expr:
        return self.parse_set_op()

    def parse_set_op(self) -> ast.Expr:
        left = self.parse_or()
        while True:
            if self.accept_kw("UNION"):
                left = ast.SetOpExpr("UNION", left, self.parse_or())
            elif self.accept_kw("INTERSECT"):
                left = ast.SetOpExpr("INTERSECT", left, self.parse_or())
            elif self.accept_kw("MINUS"):
                left = ast.SetOpExpr("MINUS", left, self.parse_or())
            else:
                return left

    def parse_or(self) -> ast.Expr:
        left = self.parse_and()
        while self.accept_kw("OR"):
            left = ast.BinaryOp("OR", left, self.parse_and())
        return left

    def parse_and(self) -> ast.Expr:
        left = self.parse_not()
        while self.accept_kw("AND"):
            left = ast.BinaryOp("AND", left, self.parse_not())
        return left

    def parse_not(self) -> ast.Expr:
        if self.accept_kw("NOT"):
            return ast.UnaryOp("NOT", self.parse_not())
        return self.parse_comparison()

    def parse_comparison(self) -> ast.Expr:
        left = self.parse_additive()
        for op in ("==", "=", "!=", "<>", "<=", ">=", "<", ">"):
            if self.current.is_op(op):
                self.advance()
                norm = {"=": "==", "<>": "!="}.get(op, op)
                return ast.BinaryOp(norm, left, self.parse_additive())
        if self.accept_kw("IN"):
            return ast.BinaryOp("IN", left, self.parse_additive())
        return left

    def parse_additive(self) -> ast.Expr:
        left = self.parse_multiplicative()
        while self.current.is_op("+") or self.current.is_op("-"):
            op = self.advance().value
            left = ast.BinaryOp(op, left, self.parse_multiplicative())
        return left

    def parse_multiplicative(self) -> ast.Expr:
        left = self.parse_unary()
        while self.current.is_op("*") or self.current.is_op("/") or self.current.is_op("%"):
            op = self.advance().value
            left = ast.BinaryOp(op, left, self.parse_unary())
        return left

    def parse_unary(self) -> ast.Expr:
        if self.current.is_op("-"):
            self.advance()
            return ast.UnaryOp("-", self.parse_unary())
        return self.parse_primary()

    def parse_primary(self) -> ast.Expr:
        tok = self.current
        if tok.is_kw("SELECT"):
            return self.parse_select_block()
        if tok.kind == "INT":
            self.advance()
            return ast.Literal(int(tok.value))
        if tok.kind == "FLOAT":
            self.advance()
            return ast.Literal(float(tok.value))
        if tok.kind == "STRING":
            self.advance()
            return ast.Literal(tok.value)
        if tok.is_kw("TRUE"):
            self.advance()
            return ast.Literal(True)
        if tok.is_kw("FALSE"):
            self.advance()
            return ast.Literal(False)
        if tok.is_op("@@"):
            self.advance()
            name = self.expect_ident()
            return ast.AccumRef(name, is_global=True)
        if tok.is_op("("):
            self.advance()
            expr = self.parse_expr()
            if self.current.is_op(","):
                items = [expr]
                while self.accept_op(","):
                    items.append(self.parse_expr())
                self.expect_op(")")
                return ast.TupleLiteral(items)
            self.expect_op(")")
            return expr
        if tok.is_op("["):
            self.advance()
            items: list[ast.Expr] = []
            while not self.current.is_op("]"):
                items.append(self.parse_expr())
                if not self.accept_op(","):
                    break
            self.expect_op("]")
            return ast.ListLiteral(items)
        if tok.is_op("{"):
            return self.parse_brace_construct()
        if tok.kind == "IDENT":
            name = self.advance().value
            if self.current.is_op("("):
                self.advance()
                args: list[ast.Expr] = []
                while not self.current.is_op(")"):
                    args.append(self.parse_expr())
                    if not self.accept_op(","):
                        break
                self.expect_op(")")
                return ast.FuncCall(name, args)
            if self.current.is_op("."):
                self.advance()
                if self.accept_op("@"):
                    attr = self.expect_ident()
                    return ast.AccumRef(attr, is_global=False, alias=name)
                attr = self.expect_ident()
                return ast.AttrRef(name, attr)
            return ast.VarRef(name)
        raise self.error("expected an expression")

    def parse_brace_construct(self) -> ast.Expr:
        """``{Post.emb, Comment.emb}`` (attr set) or ``{filter: V, ef: 200}``."""
        self.expect_op("{")
        if self.current.is_op("}"):
            self.advance()
            return ast.MapLiteral([])
        # Lookahead decides: IDENT '.' -> attr set; IDENT ':' -> option map.
        if self.current.kind == "IDENT" and self.peek().is_op("."):
            attrs: list[ast.QualifiedName] = []
            while True:
                type_name = self.expect_ident()
                self.expect_op(".")
                attr = self.expect_ident()
                attrs.append(ast.QualifiedName(type_name, attr))
                if not self.accept_op(","):
                    break
            self.expect_op("}")
            return ast.VectorAttrSet(attrs)
        entries: list[ast.OptionEntry] = []
        while True:
            key = self.expect_ident()
            self.expect_op(":")
            value = self.parse_expr()
            entries.append(ast.OptionEntry(key, value))
            if not self.accept_op(","):
                break
        self.expect_op("}")
        return ast.MapLiteral(entries)


def parse(source: str) -> list:
    """Parse GSQL source into a list of top-level AST nodes."""
    return _Parser(tokenize(source)).parse_program()


def parse_expression(source: str) -> ast.Expr:
    """Parse a single expression (used by tests and the loading executor)."""
    parser = _Parser(tokenize(source))
    expr = parser.parse_expr()
    if parser.current.kind != "EOF":
        raise parser.error("unexpected trailing input")
    return expr
