"""GSQL executor: interprets analyzed/planned GSQL against a TigerVectorDB.

Execution model (paper Sec. 5):

- **pure**            -> EmbeddingAction over all segments, status-bitmap reuse
- **filtered**        -> pattern/predicates evaluated first (pre-filter), the
  qualified vertex set becomes per-segment bitmaps, one vector search call
- **range**           -> EmbeddingAction.range with the same pre-filtering
- **similarity_join** -> enumerate matched paths, brute-force pair distances
  into a global HeapAccum (matched paths are sparse)
- **graph**           -> frontier expansion (set semantics) or full binding
  enumeration when ACCUM / residual predicates / multi-alias projection
  require it

Procedures execute top-down with vertex-set variables, global and
vertex-local accumulators, runtime vertex attributes (written by graph
algorithms like ``tg_louvain``), FOREACH/IF/WHILE control flow, and PRINT.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..core.action import EmbeddingAction
from ..core.search import VectorSearchOptions, vector_search
from ..errors import GSQLSemanticError
from ..graph.accumulators import (
    Accumulator,
    HeapAccum,
    MapAccum,
    VertexAccumMap,
    make_accumulator,
)
from ..graph.pattern import (
    EdgeHop,
    NodePattern,
    PathPattern,
    match_bindings,
    match_frontier,
)
from ..graph.vertex import Vertex
from ..graph.vertex_set import RankedVertexSet, VertexSet
from ..index.bitmap import Bitmap
from ..telemetry import get_telemetry
from ..types import distance as metric_distance
from . import ast_nodes as ast
from .functions import BUILTINS, CONTEXT_BUILTINS, call_builtin
from .planner import build_plan
from .semantic import SelectInfo, analyze_select

__all__ = ["ExecutionContext", "execute_procedure", "execute_select"]


@dataclass
class ExecutionContext:
    """All mutable state for one query execution."""

    db: Any  # TigerVectorDB (typed loosely to avoid the import cycle)
    snapshot: Any
    vars: dict[str, Any] = field(default_factory=dict)
    global_accums: dict[str, Accumulator] = field(default_factory=dict)
    vertex_accums: dict[str, VertexAccumMap] = field(default_factory=dict)
    runtime_attrs: dict[tuple[str, int], dict[str, Any]] = field(default_factory=dict)
    prints: list[Any] = field(default_factory=list)
    default_ef: int | None = None
    #: execution trace for hybrid-search measurements (Sec. 6.5)
    metrics: dict[str, Any] = field(default_factory=dict)

    # ------------------------------------------------------------- helpers
    def set_runtime_attr(self, member: tuple[str, int], name: str, value: Any) -> None:
        self.runtime_attrs.setdefault(member, {})[name] = value

    def get_runtime_attr(self, member: tuple[str, int], name: str) -> Any:
        return self.runtime_attrs.get(member, {}).get(name)

    def make_vertex(self, vertex_type: str, vid: int) -> Vertex:
        return Vertex(vertex_type, vid, self.db.store.pk_for_vid(vertex_type, vid))

    def resolve_set(self, name: str) -> VertexSet | None:
        value = self.vars.get(name)
        return value if isinstance(value, VertexSet) else None

    def known_set_vars(self) -> set[str]:
        return {name for name, value in self.vars.items() if isinstance(value, VertexSet)}


# --------------------------------------------------------------- expressions
def _vertex_attr(ctx: ExecutionContext, member: tuple[str, int], attr: str) -> Any:
    vtype, vid = member
    schema_type = ctx.db.schema.vertex_type(vtype)
    if attr in schema_type.attributes:
        return ctx.snapshot.get_attr(vtype, vid, attr)
    runtime = ctx.get_runtime_attr(member, attr)
    if runtime is not None:
        return runtime
    if attr in schema_type.embeddings:
        store = ctx.db.service.store(vtype, attr)
        return store.get_embedding(vid, snapshot_tid=ctx.snapshot.tid)
    raise GSQLSemanticError(f"vertex '{vtype}' has no attribute '{attr}'")


def eval_expr(
    expr: ast.Expr,
    ctx: ExecutionContext,
    env: dict[str, tuple[str, int]] | None = None,
) -> Any:
    """Evaluate an expression; ``env`` binds pattern aliases to vertices."""
    env = env or {}
    if isinstance(expr, ast.Literal):
        return expr.value
    if isinstance(expr, ast.VarRef):
        if expr.name in env:
            vtype, vid = env[expr.name]
            return ctx.make_vertex(vtype, vid)
        if expr.name in ctx.vars:
            return ctx.vars[expr.name]
        raise GSQLSemanticError(f"unknown variable '{expr.name}'")
    if isinstance(expr, ast.AttrRef):
        if expr.alias in env:
            return _vertex_attr(ctx, env[expr.alias], expr.attr)
        value = ctx.vars.get(expr.alias)
        if value is not None:
            if isinstance(value, Vertex):
                return _vertex_attr(ctx, value.as_pair(), expr.attr)
            return getattr(value, expr.attr)
        raise GSQLSemanticError(f"unknown alias '{expr.alias}'")
    if isinstance(expr, ast.AccumRef):
        if expr.is_global:
            accum = ctx.global_accums.get(expr.name)
            if accum is None:
                raise GSQLSemanticError(f"undeclared accumulator '@@{expr.name}'")
            return accum.value
        if expr.alias is None or expr.alias not in env:
            raise GSQLSemanticError(
                f"vertex accumulator '@{expr.name}' needs a bound vertex alias"
            )
        vmap = ctx.vertex_accums.get(expr.name)
        if vmap is None:
            raise GSQLSemanticError(f"undeclared vertex accumulator '@{expr.name}'")
        return vmap.get(env[expr.alias])
    if isinstance(expr, ast.BinaryOp):
        return _eval_binary(expr, ctx, env)
    if isinstance(expr, ast.UnaryOp):
        if expr.op == "NOT":
            return not eval_expr(expr.operand, ctx, env)
        if expr.op == "-":
            return -eval_expr(expr.operand, ctx, env)
        raise GSQLSemanticError(f"unknown unary operator '{expr.op}'")
    if isinstance(expr, ast.FuncCall):
        return _eval_call(expr, ctx, env)
    if isinstance(expr, ast.ListLiteral):
        return [eval_expr(item, ctx, env) for item in expr.items]
    if isinstance(expr, ast.TupleLiteral):
        return tuple(eval_expr(item, ctx, env) for item in expr.items)
    if isinstance(expr, ast.VectorAttrSet):
        return [qn.qualified for qn in expr.attrs]
    if isinstance(expr, ast.MapLiteral):
        return {entry.key: eval_expr(entry.value, ctx, env) for entry in expr.entries}
    if isinstance(expr, ast.SelectBlock):
        return execute_select(expr, ctx)
    if isinstance(expr, ast.SetOpExpr):
        left = eval_expr(expr.left, ctx, env)
        right = eval_expr(expr.right, ctx, env)
        if not isinstance(left, VertexSet) or not isinstance(right, VertexSet):
            raise GSQLSemanticError(f"{expr.op} requires two vertex sets")
        if expr.op == "UNION":
            return left.union(right)
        if expr.op == "INTERSECT":
            return left.intersect(right)
        return left.minus(right)
    raise GSQLSemanticError(f"cannot evaluate expression {type(expr).__name__}")


def _eval_binary(expr: ast.BinaryOp, ctx: ExecutionContext, env) -> Any:
    op = expr.op
    if op == "AND":
        return bool(eval_expr(expr.left, ctx, env)) and bool(eval_expr(expr.right, ctx, env))
    if op == "OR":
        return bool(eval_expr(expr.left, ctx, env)) or bool(eval_expr(expr.right, ctx, env))
    left = eval_expr(expr.left, ctx, env)
    right = eval_expr(expr.right, ctx, env)
    if op == "==":
        return left == right
    if op == "!=":
        return left != right
    if op == "<":
        return left < right
    if op == "<=":
        return left <= right
    if op == ">":
        return left > right
    if op == ">=":
        return left >= right
    if op == "IN":
        if isinstance(right, VertexSet) and isinstance(left, Vertex):
            return left.as_pair() in right
        return left in right
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op == "/":
        return left / right
    if op == "%":
        return left % right
    raise GSQLSemanticError(f"unknown operator '{op}'")


def _eval_call(expr: ast.FuncCall, ctx: ExecutionContext, env) -> Any:
    name = expr.name
    upper = name.upper()
    if upper == "VECTOR_DIST":
        return _eval_vector_dist(expr, ctx, env)
    if upper == "VECTORSEARCH":
        return _eval_vector_search_fn(expr, ctx, env)
    args = [eval_expr(arg, ctx, env) for arg in expr.args]
    return call_builtin(name, ctx, args)


def _embedding_of(ctx: ExecutionContext, ref: ast.AttrRef, env) -> tuple[np.ndarray, Any]:
    vtype, vid = env[ref.alias]
    embedding = ctx.db.schema.vertex_type(vtype).embedding(ref.attr)
    store = ctx.db.service.store(vtype, ref.attr)
    vector = store.get_embedding(vid, snapshot_tid=ctx.snapshot.tid)
    if vector is None:
        raise GSQLSemanticError(
            f"vertex {vtype}({vid}) has no value for embedding '{ref.attr}'"
        )
    return vector, embedding.metric


def _eval_vector_dist(expr: ast.FuncCall, ctx: ExecutionContext, env) -> float:
    """Direct VECTOR_DIST evaluation (residual predicates, ACCUM bodies)."""
    if len(expr.args) != 2:
        raise GSQLSemanticError("VECTOR_DIST takes exactly two arguments")
    metric = None
    values = []
    for arg in expr.args:
        if isinstance(arg, ast.AttrRef) and arg.alias in (env or {}):
            vector, m = _embedding_of(ctx, arg, env)
            metric = metric or m
            values.append(vector)
        else:
            values.append(np.asarray(eval_expr(arg, ctx, env), dtype=np.float32))
    if metric is None:
        from ..types import Metric

        metric = Metric.L2
    return metric_distance(values[0], values[1], metric)


def _eval_vector_search_fn(expr: ast.FuncCall, ctx: ExecutionContext, env) -> VertexSet:
    """The VectorSearch() builtin (Sec. 5.5)."""
    if len(expr.args) < 3:
        raise GSQLSemanticError("VectorSearch(attrs, query_vector, k[, options])")
    attrs_node = expr.args[0]
    if isinstance(attrs_node, ast.VectorAttrSet):
        attrs = [qn.qualified for qn in attrs_node.attrs]
    else:
        value = eval_expr(attrs_node, ctx, env)
        attrs = list(value) if isinstance(value, (list, tuple)) else [value]
    query = np.asarray(eval_expr(expr.args[1], ctx, env), dtype=np.float32)
    k = int(eval_expr(expr.args[2], ctx, env))
    filter_set: VertexSet | None = None
    ef: int | None = ctx.default_ef
    user_map: MapAccum | None = None
    if len(expr.args) >= 4:
        options_node = expr.args[3]
        if not isinstance(options_node, ast.MapLiteral):
            raise GSQLSemanticError("VectorSearch options must be a {key: value} map")
        for entry in options_node.entries:
            key = entry.key.lower()
            if key == "filter":
                value = eval_expr(entry.value, ctx, env)
                if not isinstance(value, VertexSet):
                    raise GSQLSemanticError("VectorSearch filter must be a vertex set")
                filter_set = value
            elif key == "ef":
                ef = int(eval_expr(entry.value, ctx, env))
            elif key in ("distancemap", "distance_map"):
                if not isinstance(entry.value, ast.AccumRef) or not entry.value.is_global:
                    raise GSQLSemanticError("distanceMap must be a global map accumulator")
                accum = ctx.global_accums.get(entry.value.name)
                if not isinstance(accum, MapAccum):
                    raise GSQLSemanticError(
                        f"'@@{entry.value.name}' is not a Map accumulator"
                    )
                user_map = accum
            else:
                raise GSQLSemanticError(f"unknown VectorSearch option '{entry.key}'")
    capture = MapAccum()
    start = time.perf_counter()
    result = vector_search(
        ctx.db.service,
        ctx.snapshot,
        attrs,
        query,
        k,
        VectorSearchOptions(filter=filter_set, distance_map=capture, ef=ef),
    )
    ctx.metrics["vector_seconds"] = time.perf_counter() - start
    if filter_set is not None:
        ctx.metrics["num_candidates"] = len(filter_set)
    ranking = sorted(
        ((member, dist) for member, dist in capture.value.items()), key=lambda e: e[1]
    )
    if user_map is not None:
        for member, dist in ranking:
            user_map.put(ctx.make_vertex(*member), dist)
    return RankedVertexSet(ranking, name="TopK")


# -------------------------------------------------------------- SELECT block
def _to_pattern(info: SelectInfo) -> PathPattern:
    nodes = [NodePattern(n.alias, n.label) for n in info.block.pattern.nodes]
    hops = [
        EdgeHop(e.edge_type, "out" if e.direction == "any" else e.direction, e.repeat)
        for e in info.block.pattern.edges
    ]
    return PathPattern(nodes, hops)


def _node_filters(info: SelectInfo, ctx: ExecutionContext):
    filters = {}
    for alias, conjuncts in info.pushdown.items():
        def make(alias_name: str, conjs: list[ast.Expr]):
            def check(vid: int, row: dict) -> bool:
                # The matcher annotates rows with their member type, which
                # resolves set-variable labels whose types vary per member.
                vtype = row.get("_type") or info.alias_types.get(alias_name)
                # Runtime attrs (e.g. Louvain cid) aren't in the row; fall
                # back to full attribute resolution through the context.
                member = (vtype, vid) if vtype else None
                env = {alias_name: member} if member else {}
                try:
                    return all(bool(eval_expr(c, ctx, env)) for c in conjs)
                except GSQLSemanticError:
                    return False
            return check
        filters[alias] = make(alias, conjuncts)
    return filters


def _candidate_set(info: SelectInfo, ctx: ExecutionContext, target_alias: str) -> VertexSet:
    """Evaluate the pattern + predicates; distinct vertices for one alias."""
    pattern = _to_pattern(info)
    filters = _node_filters(info, ctx)
    if not info.residual:
        sets = match_frontier(
            ctx.snapshot, ctx.db.schema, pattern,
            node_filters=filters, resolve_set=ctx.resolve_set,
        )
        return sets.get(target_alias, VertexSet(name=target_alias))
    out = VertexSet(name=target_alias)
    for binding in match_bindings(
        ctx.snapshot, ctx.db.schema, pattern,
        node_filters=filters, resolve_set=ctx.resolve_set,
    ):
        if all(bool(eval_expr(c, ctx, binding)) for c in info.residual):
            member = binding.get(target_alias)
            if member is not None:
                out.add(*member)
    return out


def _run_accums(
    stmts: list[ast.AccumStmt], ctx: ExecutionContext, env: dict[str, tuple[str, int]]
) -> None:
    for stmt in stmts:
        value = eval_expr(stmt.value, ctx, env)
        if isinstance(value, Vertex):
            pass  # vertices accumulate as handles
        target = stmt.target
        if target.is_global:
            accum = ctx.global_accums.get(target.name)
            if accum is None:
                raise GSQLSemanticError(f"undeclared accumulator '@@{target.name}'")
            accum.accum(value)
        else:
            if target.alias is None or target.alias not in env:
                raise GSQLSemanticError(
                    f"vertex accumulator '@{target.name}' needs a bound alias"
                )
            vmap = ctx.vertex_accums.setdefault(target.name, VertexAccumMap(lambda: make_accumulator("SumAccum")))
            vmap.for_vertex(env[target.alias]).accum(value)


def _bitmaps_for(ctx: ExecutionContext, vertex_type: str, candidates: VertexSet):
    vids = candidates.vids_of_type(vertex_type)
    masks = ctx.snapshot.bitmap_from_vids(vertex_type, vids)
    return [Bitmap.wrap(mask) for mask in masks], len(vids)


def execute_select(block: ast.SelectBlock, ctx: ExecutionContext) -> Any:
    """Execute one SELECT block; returns a VertexSet / ranked set / table."""
    tel = get_telemetry()
    with tel.span("gsql.plan", record="gsql.plan_seconds") as pspan:
        info = analyze_select(block, ctx.db.schema, known_vars=ctx.known_set_vars())
        plan = build_plan(info)
        pspan.set(shape=info.shape)
    ctx.metrics["last_plan"] = plan.explain()
    shape = info.shape
    if shape == "pure":
        return _exec_vector_topk(info, ctx, candidates=None)
    if shape == "filtered":
        target = info.vector.alias
        start = time.perf_counter()
        candidates = _candidate_set(info, ctx, target)
        ctx.metrics["filter_seconds"] = time.perf_counter() - start
        ctx.metrics["num_candidates"] = len(candidates)
        return _exec_vector_topk(info, ctx, candidates=candidates)
    if shape == "range":
        return _exec_vector_range(info, ctx)
    if shape == "similarity_join":
        return _exec_similarity_join(info, ctx)
    return _exec_graph_block(info, ctx)


def _resolve_target_type(info: SelectInfo, ctx: ExecutionContext, alias: str) -> str:
    vtype = info.alias_types.get(alias)
    if vtype:
        return vtype
    label = info.alias_labels.get(alias)
    if label and ctx.db.schema.has_vertex_type(label):
        return label
    raise GSQLSemanticError(f"cannot resolve the vertex type of alias '{alias}'")


def _exec_vector_topk(
    info: SelectInfo, ctx: ExecutionContext, candidates: VertexSet | None
) -> RankedVertexSet:
    vec = info.vector
    query = np.asarray(eval_expr(vec.query_expr, ctx), dtype=np.float32)
    k = int(eval_expr(vec.k_expr, ctx))
    try:
        target_types = [_resolve_target_type(info, ctx, vec.alias)]
    except GSQLSemanticError:
        # The alias is labeled by a vertex-set variable whose member types
        # are only known at runtime — search every candidate type carrying
        # this embedding attribute (multi-type search, Sec. 5.5).
        if candidates is None:
            raise
        target_types = sorted(
            t for t in candidates.vertex_types()
            if vec.attr in ctx.db.schema.vertex_type(t).embeddings
        )
    start = time.perf_counter()
    merged: list[tuple[float, tuple[str, int]]] = []
    stats = None
    for vertex_type in target_types:
        store = ctx.db.service.store(vertex_type, vec.attr)
        bitmaps = None
        if candidates is not None:
            bitmaps, valid = _bitmaps_for(ctx, vertex_type, candidates)
            if valid == 0:
                continue
        action = EmbeddingAction(store)
        result = action.topk(
            query, k, snapshot_tid=ctx.snapshot.tid, ef=ctx.default_ef, bitmaps=bitmaps
        )
        stats = action.last_stats
        merged.extend(
            (float(dist), (vertex_type, int(vid))) for vid, dist in result
        )
    merged.sort(key=lambda e: e[0])
    ctx.metrics["vector_seconds"] = time.perf_counter() - start
    if stats is not None:
        ctx.metrics["action_stats"] = stats
    ranking = [(member, dist) for dist, member in merged[:k]]
    out = RankedVertexSet(ranking, name="TopK")
    for member, _ in ranking:
        _run_accums(info.block.accum, ctx, {vec.alias: member})
        _run_accums(info.block.post_accum, ctx, {vec.alias: member})
    return out


def _exec_vector_range(info: SelectInfo, ctx: ExecutionContext) -> RankedVertexSet:
    vec = info.vector
    vertex_type = _resolve_target_type(info, ctx, vec.alias)
    query = np.asarray(eval_expr(vec.query_expr, ctx), dtype=np.float32)
    threshold = float(eval_expr(vec.threshold_expr, ctx))
    store = ctx.db.service.store(vertex_type, vec.attr)
    bitmaps = None
    needs_filter = (
        len(info.block.pattern.nodes) > 1 or info.pushdown or info.residual
        or (info.alias_labels.get(vec.alias) in ctx.known_set_vars())
    )
    if needs_filter:
        candidates = _candidate_set(info, ctx, vec.alias)
        ctx.metrics["num_candidates"] = len(candidates)
        bitmaps, valid = _bitmaps_for(ctx, vertex_type, candidates)
        if valid == 0:
            return RankedVertexSet([], name="Range")
    action = EmbeddingAction(store)
    start = time.perf_counter()
    result = action.range(
        query, threshold, snapshot_tid=ctx.snapshot.tid, ef=ctx.default_ef, bitmaps=bitmaps
    )
    ctx.metrics["vector_seconds"] = time.perf_counter() - start
    ctx.metrics["action_stats"] = action.last_stats
    ranking = [((vertex_type, int(vid)), float(dist)) for vid, dist in result]
    return RankedVertexSet(ranking, name="Range")


def _exec_similarity_join(info: SelectInfo, ctx: ExecutionContext) -> list[dict]:
    """Sec. 5.4: brute-force pair distances over matched paths, global heap."""
    vec = info.vector
    k = int(eval_expr(vec.k_expr, ctx))
    left_type = _resolve_target_type(info, ctx, vec.alias)
    right_type = _resolve_target_type(info, ctx, vec.right_alias)
    left_store = ctx.db.service.store(left_type, vec.attr)
    right_store = ctx.db.service.store(right_type, vec.right_attr)
    metric = ctx.db.schema.vertex_type(left_type).embedding(vec.attr).metric
    pattern = _to_pattern(info)
    filters = _node_filters(info, ctx)
    heap = HeapAccum(k, ascending=True)
    cache: dict[tuple[str, int], np.ndarray | None] = {}

    def embedding(store, member):
        vector = cache.get(member)
        if member not in cache:
            vector = store.get_embedding(member[1], snapshot_tid=ctx.snapshot.tid)
            cache[member] = vector
        return vector

    seen_pairs: set[tuple] = set()
    start = time.perf_counter()
    for binding in match_bindings(
        ctx.snapshot, ctx.db.schema, pattern,
        node_filters=filters, resolve_set=ctx.resolve_set,
    ):
        if info.residual and not all(
            bool(eval_expr(c, ctx, binding)) for c in info.residual
        ):
            continue
        left = binding[vec.alias]
        right = binding[vec.right_alias]
        if left == right:
            continue  # a vertex is trivially closest to itself
        # Symmetric patterns bind every pair twice ((a,b) and (b,a)); the
        # paper's "top-k most similar pairs" counts each pair once.
        pair = (left, right) if (left <= right) else (right, left)
        if pair in seen_pairs:
            continue
        seen_pairs.add(pair)
        pair = (left, right)
        lvec = embedding(left_store, left)
        rvec = embedding(right_store, right)
        if lvec is None or rvec is None:
            continue
        heap.accum((metric_distance(lvec, rvec, metric), pair))
    ctx.metrics["vector_seconds"] = time.perf_counter() - start
    ctx.metrics["num_candidates"] = len(seen_pairs)
    rows = []
    for dist, (left, right) in heap.value:
        rows.append(
            {
                vec.alias: ctx.make_vertex(*left),
                vec.right_alias: ctx.make_vertex(*right),
                "distance": dist,
            }
        )
    return rows


def _exec_graph_block(info: SelectInfo, ctx: ExecutionContext) -> Any:
    block = info.block
    pattern = _to_pattern(info)
    filters = _node_filters(info, ctx)
    needs_bindings = bool(
        info.residual or block.accum or len(block.select) > 1
    )
    if not needs_bindings:
        target = block.select[0]
        result = _candidate_set(info, ctx, target)
        for member in list(result):
            _run_accums(block.post_accum, ctx, {target: member})
        return _order_limit(result, info, ctx)
    rows: list[dict[str, tuple[str, int]]] = []
    for binding in match_bindings(
        ctx.snapshot, ctx.db.schema, pattern,
        node_filters=filters, resolve_set=ctx.resolve_set,
    ):
        if info.residual and not all(
            bool(eval_expr(c, ctx, binding)) for c in info.residual
        ):
            continue
        _run_accums(block.accum, ctx, binding)
        rows.append(dict(binding))
    if len(block.select) > 1:
        projected = []
        seen = set()
        for row in rows:
            key = tuple(row.get(alias) for alias in block.select)
            if key in seen:
                continue
            seen.add(key)
            projected.append(
                {alias: ctx.make_vertex(*row[alias]) for alias in block.select if alias in row}
            )
        return projected
    target = block.select[0]
    out = VertexSet(name=target)
    for row in rows:
        member = row.get(target)
        if member is not None:
            out.add(*member)
    for member in list(out):
        _run_accums(block.post_accum, ctx, {target: member})
    return _order_limit(out, info, ctx)


def _order_limit(result: VertexSet, info: SelectInfo, ctx: ExecutionContext) -> VertexSet:
    block = info.block
    if block.order_by is None and block.limit is None:
        return result
    target = block.select[0]
    members = list(result)
    if block.order_by is not None:
        keyed = [
            (eval_expr(block.order_by.expr, ctx, {target: member}), member)
            for member in members
        ]
        keyed.sort(key=lambda e: e[0], reverse=not block.order_by.ascending)
        members = [member for _, member in keyed]
    if block.limit is not None:
        members = members[: int(eval_expr(block.limit, ctx))]
    out = VertexSet(members, name=result.name)
    return out


# ---------------------------------------------------------------- procedures
def execute_procedure(
    proc: ast.CreateQuery, ctx: ExecutionContext, params: dict[str, Any]
) -> None:
    """Run a CREATE QUERY body with the given parameter values."""
    for decl in proc.params:
        if decl.name not in params:
            raise GSQLSemanticError(f"missing query parameter '{decl.name}'")
        ctx.vars[decl.name] = params[decl.name]
    for decl in proc.accum_decls:
        ctor_args = [eval_expr(arg, ctx) for arg in decl.ctor_args]
        if decl.is_global:
            ctx.global_accums[decl.name] = make_accumulator(decl.kind, *ctor_args)
        else:
            kind, args = decl.kind, list(ctor_args)
            ctx.vertex_accums[decl.name] = VertexAccumMap(
                lambda kind=kind, args=args: make_accumulator(kind, *args)
            )
    _run_statements(proc.body, ctx)


def _run_statements(stmts: list[ast.Statement], ctx: ExecutionContext) -> None:
    for stmt in stmts:
        _run_statement(stmt, ctx)


def _run_statement(stmt: ast.Statement, ctx: ExecutionContext) -> None:
    if isinstance(stmt, ast.AssignStmt):
        value = eval_expr(stmt.value, ctx)
        if isinstance(value, VertexSet) and not value.name:
            value.name = stmt.target
        ctx.vars[stmt.target] = value
    elif isinstance(stmt, ast.AccumulateStmt):
        if not stmt.target.is_global:
            raise GSQLSemanticError(
                "statement-level accumulation requires a global accumulator"
            )
        accum = ctx.global_accums.get(stmt.target.name)
        if accum is None:
            raise GSQLSemanticError(f"undeclared accumulator '@@{stmt.target.name}'")
        accum.accum(eval_expr(stmt.value, ctx))
    elif isinstance(stmt, ast.PrintStmt):
        for expr in stmt.exprs:
            ctx.prints.append(_printable(eval_expr(expr, ctx), ctx))
    elif isinstance(stmt, ast.ForeachStmt):
        if stmt.iterable is not None:
            iterable = eval_expr(stmt.iterable, ctx)
        else:
            lo = int(eval_expr(stmt.range_from, ctx))
            hi = int(eval_expr(stmt.range_to, ctx))
            iterable = range(lo, hi + 1)  # GSQL RANGE is inclusive
        for value in iterable:
            ctx.vars[stmt.var] = value
            _run_statements(stmt.body, ctx)
    elif isinstance(stmt, ast.IfStmt):
        if eval_expr(stmt.condition, ctx):
            _run_statements(stmt.then_body, ctx)
        else:
            _run_statements(stmt.else_body, ctx)
    elif isinstance(stmt, ast.WhileStmt):
        iterations = 0
        while eval_expr(stmt.condition, ctx):
            if stmt.limit is not None and iterations >= stmt.limit:
                break
            _run_statements(stmt.body, ctx)
            iterations += 1
    elif isinstance(stmt, ast.ExprStmt):
        eval_expr(stmt.expr, ctx)
    else:
        raise GSQLSemanticError(f"cannot execute statement {type(stmt).__name__}")


def _printable(value: Any, ctx: ExecutionContext) -> Any:
    """Convert engine objects into user-recognizable output."""
    if isinstance(value, RankedVertexSet):
        return {
            "name": value.name,
            "vertices": [
                (ctx.make_vertex(*member), dist) for member, dist in value.ranking
            ],
        }
    if isinstance(value, VertexSet):
        return {
            "name": value.name,
            "vertices": sorted(
                (ctx.make_vertex(*member) for member in value),
                key=lambda v: (v.vertex_type, str(v.pk)),
            ),
        }
    if isinstance(value, MapAccum):
        return value.value
    return value
