"""Built-in GSQL functions.

A small registry of the functions the paper's queries call, plus common
scalar helpers.  ``VECTOR_DIST`` and ``VectorSearch`` are handled by the
executor directly (they need the embedding metadata and accumulator
references respectively); everything else is looked up here by lowercase
name and invoked with already-evaluated arguments.

Graph algorithms (``tg_louvain``, ``tg_pagerank``, ...) receive the
execution context so they can read the snapshot and write their result into
runtime vertex attributes (e.g. ``Person.cid``), matching the paper's Q4
where Louvain tags each person with a community id.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Any, Callable

import numpy as np

from ..errors import GSQLSemanticError

if TYPE_CHECKING:  # pragma: no cover
    from .executor import ExecutionContext

__all__ = ["BUILTINS", "CONTEXT_BUILTINS", "call_builtin"]


def _split(value: str, sep: str) -> np.ndarray:
    """``split("0.1:0.2", ":")`` -> float32 vector (the loading-job helper)."""
    parts = [p for p in str(value).split(sep) if p != ""]
    return np.asarray([float(p) for p in parts], dtype=np.float32)


def _size(value: Any) -> int:
    return len(value)


BUILTINS: dict[str, Callable[..., Any]] = {
    "split": _split,
    "size": _size,
    "count": _size,
    "abs": abs,
    "sqrt": math.sqrt,
    "floor": math.floor,
    "ceil": math.ceil,
    "min": min,
    "max": max,
    "to_string": str,
    "str": str,
    "to_int": int,
    "to_float": float,
    "lower": lambda s: str(s).lower(),
    "upper": lambda s: str(s).upper(),
}


def _tg_louvain(ctx: "ExecutionContext", vertex_types: list[str], edge_types: list[str]) -> int:
    """Louvain community detection; writes ``cid`` and returns #communities."""
    from ..algorithms.louvain import louvain_communities

    communities = louvain_communities(ctx.snapshot, ctx.db.schema, vertex_types, edge_types)
    for member, cid in communities.items():
        ctx.set_runtime_attr(member, "cid", cid)
    return len(set(communities.values()))


def _tg_pagerank(
    ctx: "ExecutionContext",
    vertex_types: list[str],
    edge_types: list[str],
    damping: float = 0.85,
    iterations: int = 20,
) -> int:
    """PageRank; writes ``rank`` on each vertex and returns the vertex count."""
    from ..algorithms.pagerank import pagerank

    ranks = pagerank(
        ctx.snapshot, ctx.db.schema, vertex_types, edge_types,
        damping=damping, iterations=int(iterations),
    )
    for member, score in ranks.items():
        ctx.set_runtime_attr(member, "rank", score)
    return len(ranks)


def _tg_wcc(ctx: "ExecutionContext", vertex_types: list[str], edge_types: list[str]) -> int:
    """Weakly connected components; writes ``wcc_id``, returns #components."""
    from ..algorithms.wcc import weakly_connected_components

    comp = weakly_connected_components(ctx.snapshot, ctx.db.schema, vertex_types, edge_types)
    for member, cid in comp.items():
        ctx.set_runtime_attr(member, "wcc_id", cid)
    return len(set(comp.values()))


#: Builtins that need the execution context as their first argument.
CONTEXT_BUILTINS: dict[str, Callable[..., Any]] = {
    "tg_louvain": _tg_louvain,
    "tg_pagerank": _tg_pagerank,
    "tg_wcc": _tg_wcc,
}


def call_builtin(name: str, ctx: "ExecutionContext", args: list[Any]) -> Any:
    key = name.lower()
    if key in CONTEXT_BUILTINS:
        return CONTEXT_BUILTINS[key](ctx, *args)
    if key in BUILTINS:
        return BUILTINS[key](*args)
    raise GSQLSemanticError(f"unknown function '{name}'")
