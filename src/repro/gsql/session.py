"""GSQL session: the user-facing entry point.

``session.run(text, **params)`` compiles and executes GSQL source — DDL,
bare SELECT blocks, ``CREATE QUERY`` definitions, loading jobs — and returns
a :class:`QueryResult`.  Installed queries persist in the session and can be
invoked with ``session.run_query(name, **params)``.

``session.explain(text)`` returns the physical plan in the paper's notation
without executing.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..errors import GSQLSemanticError, LoadingError
from ..telemetry import get_telemetry
from ..types import AttrType, DataType, IndexType, Metric
from . import ast_nodes as ast
from .executor import ExecutionContext, eval_expr, execute_procedure, execute_select
from .parser import parse
from .planner import build_plan
from .semantic import analyze_select

__all__ = ["GSQLSession", "QueryResult"]

_ATTR_TYPES = {
    "INT": AttrType.INT,
    "UINT": AttrType.UINT,
    "FLOAT": AttrType.FLOAT,
    "DOUBLE": AttrType.DOUBLE,
    "BOOL": AttrType.BOOL,
    "STRING": AttrType.STRING,
    "DATETIME": AttrType.DATETIME,
    "LIST<FLOAT>": AttrType.LIST_FLOAT,
    "LIST<INT>": AttrType.LIST_INT,
}

_COERCERS = {
    AttrType.INT: int,
    AttrType.UINT: int,
    AttrType.FLOAT: float,
    AttrType.DOUBLE: float,
    AttrType.BOOL: lambda v: str(v).strip().lower() in ("1", "true", "t", "yes"),
    AttrType.STRING: str,
    AttrType.DATETIME: int,
}


@dataclass
class QueryResult:
    """Everything one ``run()`` produced."""

    prints: list[Any] = field(default_factory=list)
    result: Any = None  # value of the last executed block / statement
    sets: dict[str, Any] = field(default_factory=dict)  # vertex-set variables
    accumulators: dict[str, Any] = field(default_factory=dict)
    metrics: dict[str, Any] = field(default_factory=dict)
    #: Wall time of the whole run() measured from its telemetry span; 0.0
    #: when telemetry is disabled.
    elapsed_seconds: float = 0.0

    def print_values(self) -> list[Any]:
        return self.prints


class GSQLSession:
    """Stateful GSQL front end over one :class:`TigerVectorDB`.

    Thread-safety: concurrent :meth:`run` / :meth:`run_query` calls are
    supported for *query execution* — every per-run value lives in the
    :class:`QueryResult` and :class:`ExecutionContext` created inside the
    call, and each statement pins its own MVCC snapshot.  Session state
    (``installed_queries``, ``loading_jobs``, ``default_ef``) is read
    per-call and mutated only by whole-reference assignments, so readers
    never observe a half-built entry; concurrent DDL/:meth:`install` of
    the *same* name is last-writer-wins, not merged.  The serving layer
    (``repro.serve``) relies on this: its workers share one session and
    gate writes per tenant rather than serializing execution.
    """

    def __init__(self, db):
        self.db = db
        self.installed_queries: dict[str, ast.CreateQuery] = {}
        self.loading_jobs: dict[str, ast.CreateLoadingJob] = {}
        #: Default HNSW ef for declarative ORDER BY VECTOR_DIST queries (the
        #: syntax has no ef slot; VectorSearch() takes it as an option).
        self.default_ef: int | None = None

    # ------------------------------------------------------------ frontends
    def run(self, text: str, readonly: bool = False, **params) -> QueryResult:
        """Compile and execute GSQL source.

        ``readonly=True`` (the serving layer's mode for tenants without
        write access) rejects everything except SELECT blocks with a
        semantic error before any statement executes.
        """
        tel = get_telemetry()
        result = QueryResult()
        with tel.span("gsql.query", record="gsql.query_seconds") as qspan:
            with tel.span("gsql.parse", record="gsql.parse_seconds"):
                nodes = parse(text)
            if readonly:
                for node in nodes:
                    if not isinstance(node, ast.SelectBlock):
                        raise GSQLSemanticError(
                            f"{type(node).__name__} is not allowed in a "
                            f"read-only session"
                        )
            with tel.span("gsql.execute", record="gsql.execute_seconds"):
                for node in nodes:
                    self._execute_node(node, result, params)
        if tel.enabled:
            tel.inc("gsql.queries")
            result.elapsed_seconds = qspan.duration_seconds
        return result

    def install(self, text: str) -> list[str]:
        """Parse and register CREATE QUERY / loading-job definitions."""
        installed = []
        for node in parse(text):
            if isinstance(node, ast.CreateQuery):
                self.installed_queries[node.name] = node
                installed.append(node.name)
            elif isinstance(node, ast.CreateLoadingJob):
                self.loading_jobs[node.name] = node
                installed.append(node.name)
            else:
                raise GSQLSemanticError(
                    "install() accepts CREATE QUERY / CREATE LOADING JOB only"
                )
        return installed

    def run_query(self, name: str, **params) -> QueryResult:
        proc = self.installed_queries.get(name)
        if proc is None:
            raise GSQLSemanticError(f"query '{name}' is not installed")
        tel = get_telemetry()
        result = QueryResult()
        with tel.span(
            "gsql.query", record="gsql.query_seconds", procedure=name
        ) as qspan:
            with tel.span("gsql.execute", record="gsql.execute_seconds"):
                self._run_procedure(proc, result, params)
        if tel.enabled:
            tel.inc("gsql.queries")
            result.elapsed_seconds = qspan.duration_seconds
        return result

    def explain(self, text: str, **params) -> str:
        """Physical plan (paper notation) for a single SELECT block."""
        nodes = parse(text)
        blocks = [n for n in nodes if isinstance(n, ast.SelectBlock)]
        if len(blocks) != 1:
            raise GSQLSemanticError("explain() expects exactly one SELECT block")
        info = analyze_select(blocks[0], self.db.schema, known_vars=set(params))
        return build_plan(info).explain()

    # ------------------------------------------------------------- dispatch
    def _execute_node(self, node, result: QueryResult, params: dict) -> None:
        if isinstance(node, ast.CreateVertex):
            self._ddl_create_vertex(node)
        elif isinstance(node, ast.CreateEdge):
            self.db.schema.create_edge_type(
                node.name, node.from_type, node.to_type, node.directed,
                [self._make_attr(a) for a in node.attributes],
            )
        elif isinstance(node, ast.CreateEmbeddingSpace):
            options = self._embedding_options(node.options)
            self.db.schema.create_embedding_space(node.name, **options)
        elif isinstance(node, ast.AddEmbeddingAttr):
            if node.space is not None:
                self.db.schema.add_embedding_attribute(
                    node.vertex_type, node.attr_name, space=node.space
                )
            else:
                options = self._embedding_options(node.options)
                self.db.schema.add_embedding_attribute(
                    node.vertex_type, node.attr_name, **options
                )
        elif isinstance(node, ast.CreateLoadingJob):
            self.loading_jobs[node.name] = node
        elif isinstance(node, ast.RunLoadingJob):
            stats = self._run_loading_job(node)
            result.result = stats
            result.prints.append(stats)
        elif isinstance(node, ast.CreateQuery):
            self.installed_queries[node.name] = node
        elif isinstance(node, ast.InsertVertex):
            result.result = self._insert_vertex(node, params)
        elif isinstance(node, ast.InsertEdge):
            result.result = self._insert_edge(node, params)
        elif isinstance(node, ast.DeleteVertex):
            result.result = self._delete_vertices(node, params)
        elif isinstance(node, ast.SelectBlock):
            with self.db.snapshot() as snapshot:
                ctx = ExecutionContext(
                    db=self.db, snapshot=snapshot, vars=dict(params),
                    default_ef=self.default_ef,
                )
                value = execute_select(node, ctx)
                result.result = value
                result.metrics.update(ctx.metrics)
                result.prints.extend(ctx.prints)
        else:
            raise GSQLSemanticError(f"cannot execute {type(node).__name__}")

    def _run_procedure(self, proc: ast.CreateQuery, result: QueryResult, params: dict) -> None:
        with self.db.snapshot() as snapshot:
            ctx = ExecutionContext(
                db=self.db, snapshot=snapshot, default_ef=self.default_ef
            )
            execute_procedure(proc, ctx, params)
            result.prints.extend(ctx.prints)
            result.metrics.update(ctx.metrics)
            result.sets = {
                name: value for name, value in ctx.vars.items()
                if name not in params
            }
            result.accumulators = {
                name: accum.value for name, accum in ctx.global_accums.items()
            }

    # ------------------------------------------------------------------ DML
    def _eval_literal(self, expr: ast.Expr, params: dict):
        ctx = ExecutionContext(db=self.db, snapshot=None, vars=dict(params))
        return eval_expr(expr, ctx)

    def _insert_vertex(self, node: ast.InsertVertex, params: dict) -> int:
        """Positional INSERT: ordinary attributes in declaration order, then
        embedding attributes (as list literals) in declaration order."""
        vtype = self.db.schema.vertex_type(node.vertex_type)
        ordinary = list(vtype.attributes.values())
        embeddings = list(vtype.embeddings.values())
        values = [self._eval_literal(v, params) for v in node.values]
        if len(values) < 1 or len(values) > len(ordinary) + len(embeddings):
            raise GSQLSemanticError(
                f"INSERT INTO {node.vertex_type} expects between 1 and "
                f"{len(ordinary) + len(embeddings)} values"
            )
        attrs = {}
        for attr, value in zip(ordinary, values):
            coerce = _COERCERS.get(attr.attr_type, lambda v: v)
            attrs[attr.name] = coerce(value)
        with self.db.begin() as txn:
            pk = attrs[vtype.primary_key]
            txn.upsert_vertex(node.vertex_type, pk, attrs)
            for emb, value in zip(embeddings, values[len(ordinary):]):
                txn.set_embedding(node.vertex_type, pk, emb.name, np.asarray(value))
        return 1

    def _insert_edge(self, node: ast.InsertEdge, params: dict) -> int:
        if len(node.values) != 2:
            raise GSQLSemanticError("INSERT INTO EDGE expects (from_pk, to_pk)")
        from_pk = self._eval_literal(node.values[0], params)
        to_pk = self._eval_literal(node.values[1], params)
        with self.db.begin() as txn:
            txn.add_edge(node.edge_type, from_pk, to_pk)
        return 1

    def _delete_vertices(self, node: ast.DeleteVertex, params: dict) -> int:
        vtype = self.db.schema.vertex_type(node.vertex_type)
        doomed = []
        with self.db.snapshot() as snapshot:
            ctx = ExecutionContext(db=self.db, snapshot=snapshot, vars=dict(params))
            for vid, row in snapshot.scan(node.vertex_type):
                env = {node.alias: (node.vertex_type, vid)}
                if node.where is None or bool(eval_expr(node.where, ctx, env)):
                    doomed.append(row[vtype.primary_key])
        if doomed:
            with self.db.begin() as txn:
                for pk in doomed:
                    txn.delete_vertex(node.vertex_type, pk)
        return len(doomed)

    # ------------------------------------------------------------------ DDL
    def _make_attr(self, attr_def: ast.AttrDef):
        from ..graph.schema import Attribute

        type_key = attr_def.type_name.upper().replace(" ", "")
        attr_type = _ATTR_TYPES.get(type_key)
        if attr_type is None:
            raise GSQLSemanticError(f"unsupported attribute type '{attr_def.type_name}'")
        return Attribute(attr_def.name, attr_type, attr_def.primary_key)

    def _ddl_create_vertex(self, node: ast.CreateVertex) -> None:
        self.db.schema.create_vertex_type(
            node.name, [self._make_attr(a) for a in node.attributes]
        )

    def _embedding_options(self, options: dict[str, Any]) -> dict[str, Any]:
        out: dict[str, Any] = {}
        for key, value in options.items():
            key = key.upper()
            if key == "DIMENSION":
                out["dimension"] = int(value)
            elif key == "MODEL":
                out["model"] = str(value)
            elif key == "INDEX":
                out["index"] = IndexType(str(value).upper())
            elif key == "DATATYPE":
                out["datatype"] = DataType(str(value).upper())
            elif key == "METRIC":
                out["metric"] = Metric(str(value).upper())
            elif key == "M":
                out.setdefault("index_params", {})["M"] = int(value)
            elif key in ("EF_CONSTRUCTION", "EFCONSTRUCTION", "EFB"):
                out.setdefault("index_params", {})["ef_construction"] = int(value)
            else:
                raise GSQLSemanticError(f"unknown embedding option '{key}'")
        return out

    # -------------------------------------------------------------- loading
    def _run_loading_job(self, node: ast.RunLoadingJob) -> dict[str, int]:
        job = self.loading_jobs.get(node.name)
        if job is None:
            raise LoadingError(f"loading job '{node.name}' is not defined")
        stats: dict[str, int] = {}
        for clause in job.loads:
            path = node.files.get(clause.source)
            if path is None:
                raise LoadingError(
                    f"loading job '{node.name}' needs USING {clause.source}=<path>"
                )
            stats[f"{clause.target_kind}:{clause.target_name}"] = self._load_clause(
                clause, path
            )
        return stats

    def _load_clause(self, clause: ast.LoadClause, path: str) -> int:
        with open(path, newline="", encoding="utf-8") as fh:
            reader = csv.DictReader(fh)
            if reader.fieldnames is None:
                raise LoadingError(f"'{path}' is empty or has no header row")
            rows = list(reader)

        def eval_value(expr: ast.Expr, row: dict[str, str]):
            # Column references are VarRefs resolved against the CSV row.
            ctx = ExecutionContext(db=self.db, snapshot=None, vars=dict(row))
            return eval_expr(expr, ctx)

        count = 0
        if clause.target_kind == "vertex":
            vtype = self.db.schema.vertex_type(clause.target_name)
            attr_names = [self._value_name(v) for v in clause.values]
            txn = self.db.begin()
            for row in rows:
                values = [eval_value(v, row) for v in clause.values]
                attrs = {}
                for name, value in zip(attr_names, values):
                    attr = vtype.attributes.get(name)
                    if attr is None:
                        raise LoadingError(
                            f"vertex '{clause.target_name}' has no attribute '{name}'"
                        )
                    coerce = _COERCERS.get(attr.attr_type, str)
                    attrs[name] = coerce(value)
                txn.upsert_vertex(clause.target_name, attrs[vtype.primary_key], attrs)
                count += 1
                if count % 10_000 == 0:
                    txn.commit()
                    txn = self.db.begin()
            if txn.pending_ops:
                txn.commit()
        elif clause.target_kind == "edge":
            etype = self.db.schema.edge_type(clause.target_name)
            txn = self.db.begin()
            from_pk_t = self.db.schema.vertex_type(etype.from_type)
            to_pk_t = self.db.schema.vertex_type(etype.to_type)
            from_coerce = _COERCERS.get(
                from_pk_t.attributes[from_pk_t.primary_key].attr_type, str
            )
            to_coerce = _COERCERS.get(
                to_pk_t.attributes[to_pk_t.primary_key].attr_type, str
            )
            for row in rows:
                values = [eval_value(v, row) for v in clause.values]
                if len(values) < 2:
                    raise LoadingError("edge loading needs (from, to) values")
                txn.add_edge(
                    clause.target_name, from_coerce(values[0]), to_coerce(values[1])
                )
                count += 1
                if count % 20_000 == 0:
                    txn.commit()
                    txn = self.db.begin()
            if txn.pending_ops:
                txn.commit()
        elif clause.target_kind == "embedding":
            vtype = self.db.schema.vertex_type(clause.vertex_type)
            pk_attr = vtype.attributes[vtype.primary_key]
            pk_coerce = _COERCERS.get(pk_attr.attr_type, str)
            if len(clause.values) != 2:
                raise LoadingError("embedding loading needs (id, vector) values")
            pks = []
            vectors = []
            for row in rows:
                pks.append(pk_coerce(eval_value(clause.values[0], row)))
                vectors.append(
                    np.asarray(eval_value(clause.values[1], row), dtype=np.float32)
                )
            if pks:
                self.db.bulk_load_embeddings(
                    clause.vertex_type, clause.target_name, pks, np.stack(vectors)
                )
            count = len(pks)
        else:  # pragma: no cover - parser prevents this
            raise LoadingError(f"unknown load target '{clause.target_kind}'")
        return count

    @staticmethod
    def _value_name(expr: ast.Expr) -> str:
        if isinstance(expr, ast.VarRef):
            return expr.name
        raise LoadingError("vertex VALUES entries must be column names")
