"""GSQL static analysis.

Validates a parsed SELECT block against the schema and classifies it into
one of the execution shapes of Sec. 5:

- ``pure``            — top-k vector search, no filter (Sec. 5.1)
- ``range``           — VECTOR_DIST < threshold in WHERE (Sec. 5.1)
- ``filtered``        — top-k with attribute/pattern pre-filter (Sec. 5.2/5.3)
- ``similarity_join`` — VECTOR_DIST between two pattern aliases (Sec. 5.4)
- ``graph``           — no vector operation (plain GSQL)

It also performs the embedding compatibility check of Sec. 4.1 (through
:func:`repro.core.embedding.check_compatible`) and splits the WHERE clause
into per-alias pushdown conjuncts plus a residual multi-alias predicate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import GSQLSemanticError, UnknownTypeError
from ..graph.schema import GraphSchema
from . import ast_nodes as ast

__all__ = ["SelectInfo", "VectorSpec", "analyze_select", "collect_aliases", "expr_aliases"]


@dataclass
class VectorSpec:
    """The vector operation extracted from ORDER BY / WHERE."""

    kind: str  # "topk" | "range" | "join"
    alias: str  # the searched alias (or left alias for joins)
    attr: str  # embedding attribute name
    query_expr: ast.Expr | None = None  # query vector (topk/range)
    right_alias: str | None = None  # join only
    right_attr: str | None = None  # join only
    threshold_expr: ast.Expr | None = None  # range only
    k_expr: ast.Expr | None = None  # topk/join


@dataclass
class SelectInfo:
    """Everything the planner needs about one SELECT block."""

    block: ast.SelectBlock
    shape: str  # pure | filtered | range | similarity_join | graph
    alias_labels: dict[str, str | None]  # alias -> label (type or var name)
    pushdown: dict[str, list[ast.Expr]] = field(default_factory=dict)
    residual: list[ast.Expr] = field(default_factory=list)
    vector: VectorSpec | None = None
    #: alias -> resolved vertex type name (None when label is a set variable
    #: whose member types are only known at runtime)
    alias_types: dict[str, str | None] = field(default_factory=dict)


def expr_aliases(expr: ast.Expr, aliases: set[str]) -> set[str]:
    """The pattern aliases an expression references."""
    found: set[str] = set()

    def walk(node) -> None:
        if isinstance(node, ast.AttrRef):
            if node.alias in aliases:
                found.add(node.alias)
        elif isinstance(node, ast.AccumRef):
            if node.alias and node.alias in aliases:
                found.add(node.alias)
        elif isinstance(node, ast.VarRef):
            if node.name in aliases:
                found.add(node.name)
        elif isinstance(node, ast.BinaryOp):
            walk(node.left)
            walk(node.right)
        elif isinstance(node, ast.UnaryOp):
            walk(node.operand)
        elif isinstance(node, ast.FuncCall):
            for arg in node.args:
                walk(arg)
        elif isinstance(node, ast.ListLiteral):
            for item in node.items:
                walk(item)
        elif isinstance(node, ast.MapLiteral):
            for entry in node.entries:
                walk(entry.value)
    walk(expr)
    return found


def split_conjuncts(expr: ast.Expr | None) -> list[ast.Expr]:
    """Flatten top-level ANDs into a conjunct list."""
    if expr is None:
        return []
    if isinstance(expr, ast.BinaryOp) and expr.op == "AND":
        return split_conjuncts(expr.left) + split_conjuncts(expr.right)
    return [expr]


def collect_aliases(pattern: ast.PathPatternAST) -> dict[str, str | None]:
    """alias -> label for every aliased node; raises on duplicates."""
    out: dict[str, str | None] = {}
    for node in pattern.nodes:
        if node.alias:
            if node.alias in out:
                raise GSQLSemanticError(f"duplicate pattern alias '{node.alias}'")
            out[node.alias] = node.label
    return out


def _is_vector_dist(expr: ast.Expr) -> bool:
    return isinstance(expr, ast.FuncCall) and expr.name.upper() == "VECTOR_DIST"


def _resolve_alias_types(
    info: SelectInfo, pattern: ast.PathPatternAST, schema: GraphSchema
) -> None:
    """Infer each aliased position's vertex type from labels and edge endpoints."""
    # Walk positions, inferring from hop endpoints when labels are missing or
    # are set variables.
    positions = pattern.nodes
    types: list[str | None] = []
    for node in positions:
        if node.label and schema.has_vertex_type(node.label):
            types.append(node.label)
        else:
            types.append(None)
    for i, edge in enumerate(pattern.edges):
        if edge.edge_type is None:
            continue
        try:
            etype = schema.edge_type(edge.edge_type)
        except UnknownTypeError as exc:
            raise GSQLSemanticError(f"unknown edge type '{edge.edge_type}'") from exc
        if edge.direction == "out":
            src_t, dst_t = etype.from_type, etype.to_type
        elif edge.direction == "in":
            src_t, dst_t = etype.to_type, etype.from_type
        else:  # undirected "any": endpoints must agree for inference
            src_t = dst_t = etype.from_type if etype.from_type == etype.to_type else None
        if types[i] is None and src_t is not None:
            types[i] = src_t
        if types[i + 1] is None and dst_t is not None:
            types[i + 1] = dst_t
    for node, inferred in zip(positions, types):
        if node.alias:
            info.alias_types[node.alias] = inferred


def _vector_dist_spec(
    call: ast.FuncCall, aliases: dict[str, str | None]
) -> tuple[str, str, ast.Expr | None, str | None, str | None]:
    """Decompose VECTOR_DIST(args): returns (alias, attr, query, r_alias, r_attr)."""
    if len(call.args) != 2:
        raise GSQLSemanticError("VECTOR_DIST takes exactly two arguments")
    left, right = call.args
    if not isinstance(left, ast.AttrRef) or left.alias not in aliases:
        # allow symmetric order: VECTOR_DIST(qvec, s.emb)
        if isinstance(right, ast.AttrRef) and right.alias in aliases:
            left, right = right, left
        else:
            raise GSQLSemanticError(
                "VECTOR_DIST requires an embedding attribute reference "
                "(alias.attr) as one argument"
            )
    if isinstance(right, ast.AttrRef) and right.alias in aliases:
        return left.alias, left.attr, None, right.alias, right.attr
    return left.alias, left.attr, right, None, None


def analyze_select(
    block: ast.SelectBlock,
    schema: GraphSchema,
    known_vars: set[str] | None = None,
) -> SelectInfo:
    """Classify and validate a SELECT block.

    ``known_vars`` lists vertex-set variables in scope (labels may refer to
    them instead of vertex types).
    """
    known_vars = known_vars or set()
    aliases = collect_aliases(block.pattern)
    for alias in block.select:
        if alias not in aliases:
            raise GSQLSemanticError(f"SELECT references unknown alias '{alias}'")
    for node in block.pattern.nodes:
        if node.label and not schema.has_vertex_type(node.label) and node.label not in known_vars:
            raise GSQLSemanticError(
                f"'{node.label}' is neither a vertex type nor a vertex set variable"
            )

    info = SelectInfo(block=block, shape="graph", alias_labels=aliases)
    _resolve_alias_types(info, block.pattern, schema)

    # ----------------------------------------------------- vector operation
    vector: VectorSpec | None = None
    if block.order_by is not None and _is_vector_dist(block.order_by.expr):
        alias, attr, query, r_alias, r_attr = _vector_dist_spec(
            block.order_by.expr, aliases
        )
        if r_alias is not None:
            if block.limit is None:
                raise GSQLSemanticError("vector similarity join requires LIMIT k")
            vector = VectorSpec(
                "join", alias, attr, right_alias=r_alias, right_attr=r_attr,
                k_expr=block.limit,
            )
        else:
            if block.limit is None:
                raise GSQLSemanticError("ORDER BY VECTOR_DIST requires LIMIT k")
            vector = VectorSpec("topk", alias, attr, query_expr=query, k_expr=block.limit)

    conjuncts = split_conjuncts(block.where)
    remaining: list[ast.Expr] = []
    for conj in conjuncts:
        if (
            vector is None
            and isinstance(conj, ast.BinaryOp)
            and conj.op in ("<", "<=")
            and _is_vector_dist(conj.left)
        ):
            alias, attr, query, r_alias, r_attr = _vector_dist_spec(conj.left, aliases)
            if r_alias is not None:
                raise GSQLSemanticError("range search between two aliases is unsupported")
            vector = VectorSpec(
                "range", alias, attr, query_expr=query, threshold_expr=conj.right
            )
        else:
            remaining.append(conj)

    # ------------------------------------------------ pushdown vs. residual
    for conj in remaining:
        refs = expr_aliases(conj, set(aliases))
        if len(refs) == 1:
            info.pushdown.setdefault(next(iter(refs)), []).append(conj)
        else:
            info.residual.append(conj)

    # ------------------------------------------------------- classification
    if vector is not None:
        info.vector = vector
        target_type = info.alias_types.get(vector.alias) or aliases.get(vector.alias)
        if target_type and schema.has_vertex_type(target_type):
            vtype = schema.vertex_type(target_type)
            if vector.attr not in vtype.embeddings:
                raise GSQLSemanticError(
                    f"vertex '{target_type}' has no embedding attribute '{vector.attr}'"
                )
        if vector.kind == "join":
            info.shape = "similarity_join"
            join_type = info.alias_types.get(vector.right_alias)
            if target_type and join_type:
                from ..core.embedding import check_compatible

                left_emb = schema.vertex_type(target_type).embedding(vector.attr)
                right_emb = schema.vertex_type(join_type).embedding(vector.right_attr)
                check_compatible(
                    [
                        (f"{target_type}.{vector.attr}", left_emb),
                        (f"{join_type}.{vector.right_attr}", right_emb),
                    ]
                )
        elif vector.kind == "range":
            info.shape = "range"
        else:
            is_pure = (
                len(block.pattern.nodes) == 1
                and not info.pushdown
                and not info.residual
                and (block.pattern.nodes[0].label or "") not in known_vars
            )
            info.shape = "pure" if is_pure else "filtered"
    return info
