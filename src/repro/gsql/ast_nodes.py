"""GSQL abstract syntax tree.

Plain dataclasses; the parser builds these, the semantic analyzer annotates /
validates them, the planner lowers query blocks to physical plans, and the
executor interprets statements.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

__all__ = [
    "AccumDecl",
    "AccumStmt",
    "AddEmbeddingAttr",
    "AssignStmt",
    "BinaryOp",
    "AttrRef",
    "AccumRef",
    "CreateEdge",
    "CreateEmbeddingSpace",
    "CreateLoadingJob",
    "CreateQuery",
    "CreateVertex",
    "EdgePatternAST",
    "Expr",
    "ForeachStmt",
    "FuncCall",
    "IfStmt",
    "ListLiteral",
    "Literal",
    "LoadClause",
    "MapLiteral",
    "NodePatternAST",
    "OptionEntry",
    "OrderBy",
    "ParamDecl",
    "PathPatternAST",
    "PrintStmt",
    "QualifiedName",
    "RunLoadingJob",
    "SelectBlock",
    "SetOpExpr",
    "Statement",
    "UnaryOp",
    "VarRef",
    "VectorAttrSet",
    "WhileStmt",
]


# --------------------------------------------------------------- expressions
class Expr:
    """Base class for expression nodes."""


@dataclass
class Literal(Expr):
    value: Any


@dataclass
class VarRef(Expr):
    """A bare identifier: query parameter, vertex-set variable, or alias."""

    name: str


@dataclass
class AttrRef(Expr):
    """``alias.attr`` (vertex attribute access)."""

    alias: str
    attr: str


@dataclass
class AccumRef(Expr):
    """``@@name`` (global) or ``alias.@name`` (vertex-local)."""

    name: str
    is_global: bool
    alias: str | None = None  # for vertex-local refs


@dataclass
class BinaryOp(Expr):
    op: str
    left: Expr
    right: Expr


@dataclass
class UnaryOp(Expr):
    op: str
    operand: Expr


@dataclass
class FuncCall(Expr):
    name: str
    args: list[Expr]


@dataclass
class ListLiteral(Expr):
    items: list[Expr]


@dataclass
class TupleLiteral(Expr):
    """``(a, b)`` — used for HeapAccum / MapAccum (key, value) pairs."""

    items: list[Expr]


@dataclass
class QualifiedName(Expr):
    """``VertexType.attr`` inside a ``{...}`` vector-attribute set."""

    type_name: str
    attr: str

    @property
    def qualified(self) -> str:
        return f"{self.type_name}.{self.attr}"


@dataclass
class VectorAttrSet(Expr):
    """``{Post.content_emb, Comment.content_emb}``."""

    attrs: list[QualifiedName]


@dataclass
class OptionEntry:
    key: str
    value: Expr


@dataclass
class MapLiteral(Expr):
    """``{filter: USComments, ef: 200, distanceMap: @@disMap}``."""

    entries: list[OptionEntry]


@dataclass
class SetOpExpr(Expr):
    """Vertex-set algebra: ``A UNION B`` / ``A INTERSECT B`` / ``A MINUS B``."""

    op: str  # UNION | INTERSECT | MINUS
    left: Expr
    right: Expr


# ------------------------------------------------------------------ patterns
@dataclass
class NodePatternAST:
    alias: str | None
    label: str | None


@dataclass
class EdgePatternAST:
    edge_type: str | None
    direction: str  # "out", "in", "any"
    repeat: int = 1


@dataclass
class PathPatternAST:
    nodes: list[NodePatternAST]
    edges: list[EdgePatternAST]


# -------------------------------------------------------------- query blocks
@dataclass
class OrderBy:
    expr: Expr
    ascending: bool = True


@dataclass
class AccumStmt:
    """One ``target += value`` inside an ACCUM / POST-ACCUM clause."""

    target: AccumRef
    value: Expr


@dataclass
class SelectBlock(Expr):
    """SELECT ... FROM ... [WHERE] [ACCUM] [POST-ACCUM] [ORDER BY] [LIMIT].

    A SelectBlock is an expression because in procedures it appears on the
    right-hand side of a vertex-set assignment.
    """

    select: list[str]  # projected aliases
    pattern: PathPatternAST
    where: Expr | None = None
    accum: list[AccumStmt] = field(default_factory=list)
    post_accum: list[AccumStmt] = field(default_factory=list)
    order_by: OrderBy | None = None
    limit: Expr | None = None
    distinct: bool = False


# ----------------------------------------------------------------- DDL nodes
@dataclass
class AttrDef:
    name: str
    type_name: str
    primary_key: bool = False


@dataclass
class CreateVertex:
    name: str
    attributes: list[AttrDef]


@dataclass
class CreateEdge:
    name: str
    from_type: str
    to_type: str
    directed: bool
    attributes: list[AttrDef] = field(default_factory=list)


@dataclass
class AddEmbeddingAttr:
    vertex_type: str
    attr_name: str
    options: dict[str, Any] = field(default_factory=dict)
    space: str | None = None


@dataclass
class CreateEmbeddingSpace:
    name: str
    options: dict[str, Any] = field(default_factory=dict)


@dataclass
class LoadClause:
    """``LOAD f TO VERTEX t VALUES (...)`` or ``... TO EMBEDDING ATTRIBUTE``."""

    source: str  # file variable name
    target_kind: str  # "vertex" | "edge" | "embedding"
    target_name: str  # vertex/edge type or embedding attr
    vertex_type: str | None  # for embeddings: the ON VERTEX type
    values: list[Expr]


@dataclass
class CreateLoadingJob:
    name: str
    graph: str
    loads: list[LoadClause]


@dataclass
class RunLoadingJob:
    name: str
    files: dict[str, str]  # file variable -> path


@dataclass
class InsertVertex:
    """``INSERT INTO Post VALUES (1, "en", 100)`` — positional attributes,
    in schema declaration order; trailing embedding attributes may follow
    the ordinary ones as list literals."""

    vertex_type: str
    values: list[Expr]


@dataclass
class InsertEdge:
    """``INSERT INTO EDGE knows VALUES (1, 2)`` — (from_pk, to_pk)."""

    edge_type: str
    values: list[Expr]


@dataclass
class DeleteVertex:
    """``DELETE FROM Post WHERE <expr over alias 'v'>`` (simplified DML)."""

    vertex_type: str
    alias: str
    where: Expr | None


# ----------------------------------------------------------------- procedure
@dataclass
class ParamDecl:
    name: str
    type_name: str


@dataclass
class AccumDecl:
    """``SumAccum<INT> @@total;`` / ``Map<VERTEX, FLOAT> @@disMap;``."""

    kind: str
    name: str
    is_global: bool
    type_args: list[str] = field(default_factory=list)
    ctor_args: list[Expr] = field(default_factory=list)


class Statement:
    """Base class for procedure body statements."""


@dataclass
class AssignStmt(Statement):
    target: str
    value: Expr


@dataclass
class AccumulateStmt(Statement):
    """Statement-level ``@@acc += expr;``."""

    target: AccumRef
    value: Expr


@dataclass
class PrintStmt(Statement):
    exprs: list[Expr]


@dataclass
class ForeachStmt(Statement):
    var: str
    range_from: Expr
    range_to: Expr
    body: list[Statement]
    iterable: Expr | None = None  # FOREACH x IN expr DO


@dataclass
class IfStmt(Statement):
    condition: Expr
    then_body: list[Statement]
    else_body: list[Statement] = field(default_factory=list)


@dataclass
class WhileStmt(Statement):
    condition: Expr
    body: list[Statement]
    limit: int | None = None


@dataclass
class ExprStmt(Statement):
    expr: Expr


@dataclass
class CreateQuery:
    name: str
    params: list[ParamDecl]
    accum_decls: list[AccumDecl]
    body: list[Statement]
