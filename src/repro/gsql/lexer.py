"""GSQL tokenizer.

Keywords are case-insensitive (``SELECT`` == ``select``); identifiers keep
their case.  Comments: ``--`` to end of line and ``/* ... */`` blocks.
Multi-character operators include the pattern arrows ``->`` and ``<-``, so
the lexer longest-matches those before ``<`` / ``-``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import GSQLLexError

__all__ = ["KEYWORDS", "Token", "tokenize"]

KEYWORDS = frozenset(
    """
    ACCUM ADD ALTER AND AS ASC ATTRIBUTE BY CREATE DELETE DESC DIRECTED
    DISTINCT DO EDGE ELSE EMBEDDING END FALSE FOR FOREACH FROM GRAPH IF IN
    INSERT INTERSECT INTO JOB KEY LIMIT LOAD LOADING MINUS NOT ON OR ORDER
    PRIMARY PRINT QUERY RANGE RETURNS RUN SELECT SPACE THEN TO TRUE
    UNDIRECTED UNION UPDATE USING VALUES VERTEX WHERE WHILE
    """.split()
)

#: Multi-char operators first so longest-match wins.
_OPERATORS = [
    "->", "<-", "<=", ">=", "==", "!=", "<>", "+=",
    "(", ")", "{", "}", "[", "]", ",", ";", ".", ":",
    "=", "<", ">", "+", "-", "*", "/", "%", "@@", "@",
]


@dataclass(frozen=True)
class Token:
    """One lexical token: kind is KEYWORD, IDENT, INT, FLOAT, STRING, OP, EOF."""

    kind: str
    value: str
    line: int
    column: int

    def is_kw(self, word: str) -> bool:
        return self.kind == "KEYWORD" and self.value == word

    def is_op(self, op: str) -> bool:
        return self.kind == "OP" and self.value == op

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Token({self.kind}, {self.value!r}, {self.line}:{self.column})"


def tokenize(source: str) -> list[Token]:
    """Turn GSQL source into a token list ending with an EOF token."""
    tokens: list[Token] = []
    i = 0
    line = 1
    line_start = 0
    n = len(source)

    def column() -> int:
        return i - line_start + 1

    while i < n:
        ch = source[i]
        # -- whitespace / newlines
        if ch == "\n":
            line += 1
            i += 1
            line_start = i
            continue
        if ch in " \t\r":
            i += 1
            continue
        # -- comments
        if source.startswith("--", i):
            while i < n and source[i] != "\n":
                i += 1
            continue
        if source.startswith("/*", i):
            end = source.find("*/", i + 2)
            if end < 0:
                raise GSQLLexError("unterminated block comment", line, column())
            for offset in range(i, end):
                if source[offset] == "\n":
                    line += 1
                    line_start = offset + 1
            i = end + 2
            continue
        # -- strings
        if ch in "\"'":
            quote = ch
            start_col = column()
            j = i + 1
            buf = []
            while j < n and source[j] != quote:
                if source[j] == "\\" and j + 1 < n:
                    esc = source[j + 1]
                    buf.append({"n": "\n", "t": "\t", "\\": "\\", quote: quote}.get(esc, esc))
                    j += 2
                else:
                    if source[j] == "\n":
                        raise GSQLLexError("unterminated string literal", line, start_col)
                    buf.append(source[j])
                    j += 1
            if j >= n:
                raise GSQLLexError("unterminated string literal", line, start_col)
            tokens.append(Token("STRING", "".join(buf), line, start_col))
            i = j + 1
            continue
        # -- numbers
        if ch.isdigit() or (ch == "." and i + 1 < n and source[i + 1].isdigit()):
            start_col = column()
            j = i
            seen_dot = False
            seen_exp = False
            while j < n:
                c = source[j]
                if c.isdigit():
                    j += 1
                elif c == "." and not seen_dot and not seen_exp:
                    # Don't eat `1.attr`-style member access on ints.
                    if j + 1 < n and (source[j + 1].isdigit()):
                        seen_dot = True
                        j += 1
                    else:
                        break
                elif c in "eE" and not seen_exp and j + 1 < n and (
                    source[j + 1].isdigit() or source[j + 1] in "+-"
                ):
                    seen_exp = True
                    j += 2 if source[j + 1] in "+-" else 1
                else:
                    break
            text = source[i:j]
            kind = "FLOAT" if ("." in text or "e" in text or "E" in text) else "INT"
            tokens.append(Token(kind, text, line, start_col))
            i = j
            continue
        # -- identifiers / keywords
        if ch.isalpha() or ch == "_":
            start_col = column()
            j = i
            while j < n and (source[j].isalnum() or source[j] == "_"):
                j += 1
            text = source[i:j]
            upper = text.upper()
            if upper in KEYWORDS:
                tokens.append(Token("KEYWORD", upper, line, start_col))
            else:
                tokens.append(Token("IDENT", text, line, start_col))
            i = j
            continue
        # -- operators (longest match)
        matched = False
        for op in _OPERATORS:
            if source.startswith(op, i):
                tokens.append(Token("OP", op, line, column()))
                i += len(op)
                matched = True
                break
        if not matched:
            raise GSQLLexError(f"unexpected character {ch!r}", line, column())
    tokens.append(Token("EOF", "", line, column()))
    return tokens
