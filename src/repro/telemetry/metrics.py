"""Counters, gauges, and fixed-bucket latency histograms.

A :class:`MetricsRegistry` is a process-global, thread-safe catalog of named
instruments.  Instruments are created lazily on first use
(``registry.counter("wal.records").inc()``) so instrumented code never has
to pre-declare anything; :mod:`repro.telemetry.instruments` holds the
canonical name catalog and per-instrument bucket presets.

Histograms are fixed-bucket (Prometheus-style): ``observe`` finds the first
bucket whose upper bound contains the value, percentiles are read back as
the upper bound of the bucket where the cumulative count crosses the rank.
This keeps every observation O(log buckets) with bounded memory, which is
what lets the registry sit on hot query paths.

Thread-safety: every instrument carries its own lock and the registry
serializes instrument creation and snapshots, so concurrent writers from
query threads, vacuum threads, and the WAL never lose updates.
"""

from __future__ import annotations

import threading
from bisect import bisect_left

__all__ = [
    "Counter",
    "DEFAULT_COUNT_BUCKETS",
    "DEFAULT_LATENCY_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
]

#: Exponential latency buckets in seconds: 10us .. 25s (then +Inf overflow).
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = tuple(
    base * scale
    for scale in (1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0)
    for base in (1.0, 2.5, 5.0)
)[:-1]

#: Power-of-4 count buckets: distance computations, hops, delta sizes.
DEFAULT_COUNT_BUCKETS: tuple[float, ...] = tuple(float(4**i) for i in range(13))


class Counter:
    """Monotonically increasing counter."""

    __slots__ = ("name", "_lock", "_value")

    def __init__(self, name: str):
        self.name = name
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, n: int | float = 1) -> None:
        with self._lock:
            self._value += n

    @property
    def value(self) -> int | float:
        return self._value

    def snapshot(self) -> int | float:
        return self._value


class Gauge:
    """Last-write-wins instantaneous value."""

    __slots__ = ("name", "_lock", "_value")

    def __init__(self, name: str):
        self.name = name
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def add(self, delta: float) -> None:
        with self._lock:
            self._value += float(delta)

    @property
    def value(self) -> float:
        return self._value

    def snapshot(self) -> float:
        return self._value


class Histogram:
    """Fixed-bucket histogram with percentile readback.

    ``buckets`` are ascending upper bounds; one implicit +Inf overflow
    bucket is appended.  ``percentile(p)`` returns the upper bound of the
    bucket where the cumulative count first reaches ``p`` of the total (for
    the overflow bucket, the maximum observed value), which is exact to
    bucket resolution — the standard fixed-bucket tradeoff.
    """

    __slots__ = ("name", "buckets", "_lock", "_counts", "_sum", "_count", "_min", "_max")

    def __init__(self, name: str, buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS):
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError("histogram buckets must be a non-empty ascending sequence")
        self.name = name
        self.buckets = tuple(float(b) for b in buckets)
        self._lock = threading.Lock()
        self._counts = [0] * (len(self.buckets) + 1)  # +1: overflow bucket
        self._sum = 0.0
        self._count = 0
        self._min = float("inf")
        self._max = float("-inf")

    def observe(self, value: float) -> None:
        value = float(value)
        index = bisect_left(self.buckets, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    def percentile(self, p: float) -> float:
        """Upper bound of the bucket containing the ``p``-quantile (p in [0, 1])."""
        if not 0.0 <= p <= 1.0:
            raise ValueError("percentile must be in [0, 1]")
        with self._lock:
            total = self._count
            if total == 0:
                return 0.0
            rank = max(1, int(p * total + 0.5))
            cumulative = 0
            for index, count in enumerate(self._counts):
                cumulative += count
                if cumulative >= rank:
                    if index < len(self.buckets):
                        # Clamp to the observed max so coarse buckets never
                        # report a quantile above any recorded value.
                        return min(self.buckets[index], self._max)
                    return self._max  # overflow bucket: best answer is the max
            return self._max

    def snapshot(self) -> dict:
        with self._lock:
            counts = list(self._counts)
            total, total_sum = self._count, self._sum
            lo = self._min if total else 0.0
            hi = self._max if total else 0.0
        out = {
            "count": total,
            "sum": total_sum,
            "min": lo,
            "max": hi,
            "mean": total_sum / total if total else 0.0,
            "buckets": {str(b): c for b, c in zip(self.buckets, counts)},
            "overflow": counts[-1],
        }
        out["p50"] = self.percentile(0.50)
        out["p95"] = self.percentile(0.95)
        out["p99"] = self.percentile(0.99)
        return out


class MetricsRegistry:
    """Thread-safe, lazily-populated catalog of named instruments."""

    def __init__(self):
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # --------------------------------------------------------- get-or-create
    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            with self._lock:
                instrument = self._counters.setdefault(name, Counter(name))
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            with self._lock:
                instrument = self._gauges.setdefault(name, Gauge(name))
        return instrument

    def histogram(self, name: str, buckets: tuple[float, ...] | None = None) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            if buckets is None:
                from .instruments import bucket_preset

                buckets = bucket_preset(name)
            with self._lock:
                instrument = self._histograms.setdefault(name, Histogram(name, buckets))
        return instrument

    # ----------------------------------------------------------- conveniences
    def inc(self, name: str, n: int | float = 1) -> None:
        self.counter(name).inc(n)

    def set_gauge(self, name: str, value: float) -> None:
        self.gauge(name).set(value)

    def observe(self, name: str, value: float) -> None:
        self.histogram(name).observe(value)

    # -------------------------------------------------------------- readback
    def snapshot(self) -> dict:
        """One JSON-able dict of every instrument's current state."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        return {
            "counters": {n: c.snapshot() for n, c in sorted(counters.items())},
            "gauges": {n: g.snapshot() for n, g in sorted(gauges.items())},
            "histograms": {n: h.snapshot() for n, h in sorted(histograms.items())},
        }

    def reset(self) -> None:
        """Drop every instrument (tests and ``\\stats``-adjacent tooling)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
