"""Spans and trace trees.

A :class:`Span` is one timed region of a query with a name, free-form
attributes, and children.  Spans nest through context managers held in a
per-thread stack (owned by :class:`~repro.telemetry.runtime.Telemetry`), so
a distributed query produces one tree — coordinator at the root, machine
dispatches below it, segment searches below those — even though the
"machines" are simulated in-process.  Retries, hedges, and breaker
rejections appear as extra child spans/events, which is what makes the
resilience layer's decisions visible.

The disabled path uses :data:`NULL_SPAN`, a shared inert span whose every
method is a no-op, so instrumented code never branches on "is telemetry
on?" just to open a span.
"""

from __future__ import annotations

import time
from typing import Any, Iterator

__all__ = ["NULL_SPAN", "NullSpan", "Span", "format_span_tree"]


class Span:
    """One timed region: name, attributes, start/end, children."""

    __slots__ = ("name", "attrs", "start_seconds", "end_seconds", "children")

    def __init__(self, name: str, attrs: dict[str, Any] | None = None):
        self.name = name
        self.attrs: dict[str, Any] = attrs or {}
        self.start_seconds = time.perf_counter()
        self.end_seconds: float | None = None
        self.children: list["Span"] = []

    # ------------------------------------------------------------- mutation
    def set(self, **attrs: Any) -> "Span":
        """Attach/overwrite attributes on an open (or closed) span."""
        self.attrs.update(attrs)
        return self

    def event(self, name: str, **attrs: Any) -> "Span":
        """Record a zero-duration child marker (retry, rejection, ...)."""
        child = Span(name, attrs)
        child.end_seconds = child.start_seconds
        self.children.append(child)
        return child

    def finish(self) -> None:
        if self.end_seconds is None:
            self.end_seconds = time.perf_counter()

    # ------------------------------------------------------------- readback
    @property
    def duration_seconds(self) -> float:
        end = self.end_seconds if self.end_seconds is not None else time.perf_counter()
        return end - self.start_seconds

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name_prefix: str) -> list["Span"]:
        """Every span in the tree whose name starts with ``name_prefix``."""
        return [s for s in self.walk() if s.name.startswith(name_prefix)]

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "duration_seconds": self.duration_seconds,
            "attrs": dict(self.attrs),
            "children": [c.to_dict() for c in self.children],
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.name!r}, {self.duration_seconds * 1e3:.3f}ms, {self.attrs})"


class NullSpan:
    """Inert span: every operation is a no-op; shared singleton."""

    __slots__ = ()

    name = ""
    attrs: dict[str, Any] = {}
    children: list = []
    duration_seconds = 0.0

    def set(self, **attrs: Any) -> "NullSpan":
        return self

    def event(self, name: str, **attrs: Any) -> "NullSpan":
        return self

    def finish(self) -> None:
        return None

    def walk(self):
        return iter(())

    def find(self, name_prefix: str) -> list:
        return []

    def to_dict(self) -> dict:
        return {}


NULL_SPAN = NullSpan()


def format_span_tree(span: Span, indent: int = 0) -> str:
    """Human-readable trace tree (the sample in README's Observability)."""
    pad = "  " * indent
    attrs = " ".join(f"{k}={v}" for k, v in sorted(span.attrs.items()))
    line = f"{pad}{span.name}  [{span.duration_seconds * 1e3:.3f} ms]"
    if attrs:
        line += f"  {attrs}"
    lines = [line]
    for child in span.children:
        lines.append(format_span_tree(child, indent + 1))
    return "\n".join(lines)
