"""Canonical instrument catalog.

Instrument names are dotted ``subsystem.measurement`` strings; registries
create them lazily so this catalog is documentation plus bucket presets,
not a registration requirement.  Keeping the names here (and only here)
gives ``repro-stats`` and the docs one source of truth, and lets
``bucket_preset`` route count-shaped histograms (distance computations,
hops, delta sizes) onto count buckets instead of latency buckets.
"""

from __future__ import annotations

from .metrics import DEFAULT_COUNT_BUCKETS, DEFAULT_LATENCY_BUCKETS

__all__ = ["INSTRUMENTS", "bucket_preset"]

#: name -> (kind, description).  Kind is "counter" | "gauge" | "histogram".
INSTRUMENTS: dict[str, tuple[str, str]] = {
    # ---- query layer -----------------------------------------------------
    "query.count": ("counter", "distributed top-k queries executed"),
    "query.latency_seconds": ("histogram", "end-to-end distributed query latency"),
    "query.slow": ("counter", "queries over the slow-query threshold"),
    # ---- HNSW ------------------------------------------------------------
    "hnsw.searches": ("counter", "HNSW top-k searches"),
    "hnsw.fused_searches": ("counter", "queries answered by the fused lockstep traversal"),
    "hnsw.distance_computations": ("histogram", "distance computations per search"),
    "hnsw.hops": ("histogram", "graph hops per search"),
    "hnsw.ef_expansions": ("histogram", "effective ef (candidate expansions) per search"),
    "hnsw.search_seconds": ("histogram", "single-segment HNSW search latency"),
    # ---- MVCC / vacuum ---------------------------------------------------
    "vacuum.delta_size": ("histogram", "delta records merged per delta_merge"),
    "vacuum.delta_merge_seconds": ("histogram", "stage-1 delta merge duration"),
    "vacuum.index_merge_seconds": ("histogram", "stage-2 index merge duration"),
    "vacuum.versions_reclaimed": ("counter", "MVCC snapshot versions reclaimed"),
    "vacuum.records_merged": ("counter", "delta records flushed into segments"),
    "vacuum.quota_deferrals": (
        "counter",
        "store merges deferred a round because the owning tenant hit its quota",
    ),
    # ---- WAL -------------------------------------------------------------
    "wal.records": ("counter", "WAL records appended"),
    "wal.flushes": ("counter", "WAL buffer flushes"),
    "wal.fsyncs": ("counter", "fsync-equivalent durability barriers"),
    "wal.replayed_records": ("counter", "records recovered during replay"),
    "wal.replay_truncated": ("counter", "replays stopped at a torn tail"),
    "wal.replay_corrupt": ("counter", "replays aborted on mid-file corruption"),
    # ---- GSQL ------------------------------------------------------------
    "gsql.queries": ("counter", "GSQL statements executed"),
    "gsql.parse_seconds": ("histogram", "GSQL parse phase"),
    "gsql.plan_seconds": ("histogram", "GSQL analyze+plan phase"),
    "gsql.execute_seconds": ("histogram", "GSQL execute phase"),
    "gsql.query_seconds": ("histogram", "GSQL whole-statement latency"),
    # ---- cluster simulator ----------------------------------------------
    "coordinator.requests": ("counter", "simulated coordinator requests"),
    "machine.jobs": ("counter", "segment jobs scheduled onto machine cores"),
    # ---- resilience ------------------------------------------------------
    "resilience.retries": ("counter", "segment search retries after injected faults"),
    "resilience.hedges": ("counter", "hedged duplicate dispatches"),
    "resilience.degraded_queries": ("counter", "queries answered with coverage < 1"),
    "resilience.breaker_open": ("counter", "circuit breaker closed->open transitions"),
    "resilience.breaker_half_open": ("counter", "circuit breaker open->half-open probes"),
    "resilience.breaker_close": ("counter", "circuit breaker half-open->closed recoveries"),
    # ---- serving ---------------------------------------------------------
    "serve.requests": ("counter", "requests submitted to the query server"),
    "serve.completed": ("counter", "requests answered (including typed failures)"),
    "serve.shed": ("counter", "requests rejected by admission control"),
    "serve.shed_queue_full": ("counter", "admission rejections: bounded queue full"),
    "serve.shed_rate_limited": ("counter", "admission rejections: tenant token bucket empty"),
    "serve.deadline_timeouts": ("counter", "requests deadline-failed before execution"),
    "serve.batches": ("counter", "micro-batches executed by workers"),
    "serve.fused_queries": ("counter", "queries answered via the fused batch kernel"),
    "serve.cache_hits": ("counter", "result-cache hits"),
    "serve.cache_misses": ("counter", "result-cache misses"),
    "serve.cache_evictions": ("counter", "result-cache LRU evictions"),
    "serve.cache_bypass_commit_race": (
        "counter",
        "results served uncached: watermark outran the pinned snapshot mid-commit",
    ),
    "serve.shed_tenant_share": (
        "counter",
        "admission rejections: tenant exceeded its queue-share bound",
    ),
    "serve.staleness_rejections": (
        "counter",
        "requests failed typed: max_staleness unmet within the wait budget",
    ),
    "serve.staleness_waits": (
        "counter",
        "snapshot re-pins while waiting for a fresh-enough snapshot",
    ),
    "serve.session_token_rejections": (
        "counter",
        "requests failed typed: session token never covered by a snapshot",
    ),
    "serve.session_token_waits": (
        "counter",
        "snapshot re-pins while waiting for a token-covering snapshot",
    ),
    "serve.worker_crashes": ("counter", "injected serve-worker crashes"),
    "serve.worker_respawns": ("counter", "replacement workers spawned after a crash"),
    "serve.worker_requeues": (
        "counter",
        "in-flight requests re-queued after their worker crashed",
    ),
    "serve.worker_stalls": ("counter", "injected serve-worker stalls (stragglers)"),
    "serve.batch_poison_degrades": (
        "counter",
        "fused batches degraded to per-query execution after injected faults",
    ),
    "serve.deadline_reorders": (
        "counter",
        "dequeues where a near-deadline request overtook an earlier arrival",
    ),
    "serve.queue_depth": ("gauge", "requests waiting in the weighted-fair queue"),
    "serve.batch_size": ("histogram", "requests fused per executed micro-batch"),
    "serve.queue_wait_seconds": ("histogram", "submit-to-dequeue queue wait"),
    "serve.latency_seconds": ("histogram", "submit-to-answer serving latency"),
    # ---- elastic serve tier ---------------------------------------------
    "elastic.routed_requests": ("counter", "queries routed through the elastic tier"),
    "elastic.shard_requests": ("counter", "partial sub-requests dispatched to shards"),
    "elastic.route_retries": (
        "counter",
        "sub-requests re-routed after an ownership race or server crash",
    ),
    "elastic.rebalances": ("counter", "completed live segment-group handoffs"),
    "elastic.rebalance_drain_waits": (
        "counter",
        "waits for in-flight requests to drain before a handoff transfer",
    ),
    "elastic.handoff_gate_waits": (
        "counter",
        "routed requests gated behind an in-progress handoff",
    ),
    "elastic.cache_coherence_bypass": (
        "counter",
        "fan-outs shipped cache_ok=False: watermark outran the routed snapshot",
    ),
    "elastic.crash_failovers": ("counter", "servers failed out of the ring"),
    "elastic.scale_out": ("counter", "autoscaler scale-out decisions applied"),
    "elastic.scale_in": ("counter", "autoscaler scale-in decisions applied"),
    "elastic.servers": ("gauge", "live servers in the elastic tier"),
    # ---- product quantization -------------------------------------------
    "pq.trainings": ("counter", "PQ codebook trainings (segment demotions)"),
    "pq.train_seconds": ("histogram", "per-segment PQ codebook training time"),
    "pq.adc_scans": ("counter", "phase-1 ADC scans over cold-segment codes"),
    "pq.rerank_candidates": (
        "histogram",
        "candidates handed to the exact rerank phase per cold scan",
    ),
    # ---- tiered storage --------------------------------------------------
    "tier.accesses": ("counter", "segment searches observed by the tier manager"),
    "tier.cold_hits": ("counter", "segment searches served from a cold snapshot"),
    "tier.demotions": ("counter", "segments demoted hot -> cold"),
    "tier.promotions": ("counter", "segments promoted cold -> hot"),
    "tier.rebalances": ("counter", "tier rebalance passes at vacuum boundaries"),
    "tier.rebalance_seconds": ("histogram", "tier rebalance pass duration"),
    "tier.hot_segments": ("gauge", "segments currently resident in the hot tier"),
    "tier.cold_segments": ("gauge", "segments currently in the cold (PQ) tier"),
    "tier.resident_bytes": ("gauge", "vector-representation bytes resident in memory"),
}

#: histogram names that count things rather than time them
_COUNT_SHAPED = (
    "hnsw.distance_computations",
    "hnsw.hops",
    "hnsw.ef_expansions",
    "vacuum.delta_size",
    "serve.batch_size",
    "pq.rerank_candidates",
)


def bucket_preset(name: str) -> tuple[float, ...]:
    """Default bucket layout for a histogram name (latency unless count-shaped)."""
    if name in _COUNT_SHAPED:
        return DEFAULT_COUNT_BUCKETS
    return DEFAULT_LATENCY_BUCKETS


def describe(name: str) -> str:
    kind_desc = INSTRUMENTS.get(name)
    return kind_desc[1] if kind_desc else ""
