"""Per-query profiles.

A :class:`QueryProfile` bundles one query's trace tree with the scalar
facts callers actually chart (latency, coverage, retries, hedges), so the
bench harness and tests can attach it to a search output and serialize it
without re-walking the span tree.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from .tracing import Span, format_span_tree

__all__ = ["QueryProfile"]


@dataclass
class QueryProfile:
    trace: Span
    metrics: dict[str, Any] = field(default_factory=dict)

    @property
    def duration_seconds(self) -> float:
        return self.trace.duration_seconds

    def to_dict(self) -> dict:
        return {
            "duration_seconds": self.duration_seconds,
            "metrics": dict(self.metrics),
            "trace": self.trace.to_dict(),
        }

    def format(self) -> str:
        lines = [f"query profile ({self.duration_seconds * 1e3:.3f} ms)"]
        for key, value in sorted(self.metrics.items()):
            lines.append(f"  {key}: {value}")
        lines.append(format_span_tree(self.trace, indent=1))
        return "\n".join(lines)
