"""Exporters: JSON, Prometheus text exposition, and human-readable tables.

All exporters consume the plain-dict output of
:meth:`MetricsRegistry.snapshot` rather than live registries, so a snapshot
taken at one moment can be serialized, shipped, and re-rendered without
holding any locks.
"""

from __future__ import annotations

import json

__all__ = ["format_snapshot", "from_json", "to_json", "to_prometheus"]


def to_json(snapshot: dict, indent: int | None = 2) -> str:
    return json.dumps(snapshot, indent=indent, sort_keys=True)


def from_json(text: str) -> dict:
    return json.loads(text)


def _prom_name(name: str, suffix: str = "") -> str:
    return "repro_" + name.replace(".", "_").replace("-", "_") + suffix


def to_prometheus(snapshot: dict) -> str:
    """Prometheus text exposition format (untyped HELP lines omitted).

    Histogram buckets are emitted cumulatively with ``le`` labels plus the
    conventional ``_sum``/``_count`` series, counters as plain samples,
    gauges likewise.
    """
    lines: list[str] = []
    for name, value in snapshot.get("counters", {}).items():
        lines.append(f"# TYPE {_prom_name(name)} counter")
        lines.append(f"{_prom_name(name)} {value}")
    for name, value in snapshot.get("gauges", {}).items():
        lines.append(f"# TYPE {_prom_name(name)} gauge")
        lines.append(f"{_prom_name(name)} {value}")
    for name, hist in snapshot.get("histograms", {}).items():
        lines.append(f"# TYPE {_prom_name(name)} histogram")
        cumulative = 0
        for bound, count in hist.get("buckets", {}).items():
            cumulative += count
            lines.append(
                f'{_prom_name(name, "_bucket")}{{le="{float(bound):g}"}} {cumulative}'
            )
        cumulative += hist.get("overflow", 0)
        lines.append(f'{_prom_name(name, "_bucket")}{{le="+Inf"}} {cumulative}')
        lines.append(f'{_prom_name(name, "_sum")} {hist.get("sum", 0.0)}')
        lines.append(f'{_prom_name(name, "_count")} {hist.get("count", 0)}')
    return "\n".join(lines) + "\n"


def format_snapshot(snapshot: dict) -> str:
    """Aligned human-readable table (the ``\\stats`` / repro-stats view)."""
    lines: list[str] = []
    counters = snapshot.get("counters", {})
    if counters:
        lines.append("counters")
        width = max(len(n) for n in counters)
        for name, value in counters.items():
            lines.append(f"  {name:<{width}}  {value}")
    gauges = snapshot.get("gauges", {})
    if gauges:
        lines.append("gauges")
        width = max(len(n) for n in gauges)
        for name, value in gauges.items():
            lines.append(f"  {name:<{width}}  {value:g}")
    histograms = snapshot.get("histograms", {})
    if histograms:
        lines.append("histograms (count / mean / p50 / p95 / p99 / max)")
        width = max(len(n) for n in histograms)
        for name, hist in histograms.items():
            lines.append(
                f"  {name:<{width}}  {hist['count']}"
                f" / {hist['mean']:.6g}"
                f" / {hist['p50']:.6g}"
                f" / {hist['p95']:.6g}"
                f" / {hist['p99']:.6g}"
                f" / {hist['max']:.6g}"
            )
    if not lines:
        return "(no instruments recorded)"
    return "\n".join(lines)
