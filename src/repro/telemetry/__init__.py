"""repro.telemetry — zero-dependency tracing, metrics, and profiling.

Three pillars (ISSUE 3 / DESIGN.md §8):

- tracing: nested context-manager :class:`Span` trees per query
- metrics: a process-global :class:`MetricsRegistry` of counters, gauges,
  and fixed-bucket latency histograms with canonical instrument names
- profiling/export: :class:`QueryProfile`, a slow-query log, and JSON /
  Prometheus exporters behind the ``repro-stats`` CLI

The active instance defaults to :class:`NullTelemetry`; instrumented hot
paths are behaviorally identical until ``enable_telemetry()`` (or scoped
``use_telemetry``) installs a live :class:`Telemetry`.
"""

from .export import format_snapshot, from_json, to_json, to_prometheus
from .instruments import INSTRUMENTS, bucket_preset
from .metrics import (
    DEFAULT_COUNT_BUCKETS,
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .profile import QueryProfile
from .runtime import (
    NullTelemetry,
    Telemetry,
    disable_telemetry,
    enable_telemetry,
    get_telemetry,
    set_telemetry,
    use_telemetry,
)
from .tracing import NULL_SPAN, NullSpan, Span, format_span_tree

__all__ = [
    "Counter",
    "DEFAULT_COUNT_BUCKETS",
    "DEFAULT_LATENCY_BUCKETS",
    "Gauge",
    "Histogram",
    "INSTRUMENTS",
    "MetricsRegistry",
    "NULL_SPAN",
    "NullSpan",
    "NullTelemetry",
    "QueryProfile",
    "Span",
    "Telemetry",
    "bucket_preset",
    "disable_telemetry",
    "enable_telemetry",
    "format_snapshot",
    "format_span_tree",
    "from_json",
    "get_telemetry",
    "set_telemetry",
    "to_json",
    "to_prometheus",
    "use_telemetry",
]
