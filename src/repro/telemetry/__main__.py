"""``python -m repro.telemetry`` entry point."""

from .cli import main

raise SystemExit(main())
