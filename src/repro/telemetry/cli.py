"""``repro-stats`` — inspect and convert telemetry snapshots.

Subcommands:

- ``demo``: run a small in-process distributed workload with telemetry
  enabled and print the metrics table plus the last query's trace tree.
  This is the zero-setup way to see what the instruments look like.
- ``show SNAPSHOT.json``: render a saved JSON snapshot as the human table.
- ``prom SNAPSHOT.json``: convert a saved JSON snapshot to Prometheus text.
"""

from __future__ import annotations

import argparse
import sys

from .export import format_snapshot, from_json, to_json, to_prometheus
from .runtime import Telemetry, use_telemetry
from .tracing import format_span_tree

__all__ = ["main"]


def _read_snapshot(path: str) -> dict:
    with open(path, "r", encoding="utf-8") as fh:
        return from_json(fh.read())


def _cmd_demo(args: argparse.Namespace) -> int:
    import numpy as np

    from ..core.distributed import DistributedSearcher
    from ..core.embedding import EmbeddingType
    from ..core.service import EmbeddingStore
    from ..types import IndexType, Metric

    rng = np.random.default_rng(args.seed)
    dim, n = 16, 512
    embedding = EmbeddingType(
        name="emb", dimension=dim, model="demo", index=IndexType.HNSW, metric=Metric.L2
    )
    store = EmbeddingStore("Demo", embedding, segment_size=128)
    store.bulk_load(
        np.arange(n, dtype=np.int64),
        rng.standard_normal((n, dim), dtype=np.float32),
        tid=1,
    )
    searcher = DistributedSearcher(store, num_machines=2)
    queries = rng.standard_normal((args.queries, dim), dtype=np.float32)
    telemetry = Telemetry(slow_query_seconds=0.0)
    with use_telemetry(telemetry):
        for query in queries:
            searcher.search(query, k=10, snapshot_tid=1)
    snapshot = telemetry.registry.snapshot()
    if args.json:
        print(to_json(snapshot))
    else:
        print(format_snapshot(snapshot))
        trace = telemetry.last_trace()
        if trace is not None:
            print()
            print("last trace:")
            print(format_span_tree(trace, indent=1))
    return 0


def _cmd_show(args: argparse.Namespace) -> int:
    print(format_snapshot(_read_snapshot(args.snapshot)))
    return 0


def _cmd_prom(args: argparse.Namespace) -> int:
    sys.stdout.write(to_prometheus(_read_snapshot(args.snapshot)))
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-stats", description="telemetry snapshot tooling"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help="run a tiny instrumented workload")
    demo.add_argument("--queries", type=int, default=20)
    demo.add_argument("--seed", type=int, default=0)
    demo.add_argument("--json", action="store_true", help="emit JSON snapshot")
    demo.set_defaults(func=_cmd_demo)

    show = sub.add_parser("show", help="render a JSON snapshot as a table")
    show.add_argument("snapshot")
    show.set_defaults(func=_cmd_show)

    prom = sub.add_parser("prom", help="convert a JSON snapshot to Prometheus text")
    prom.add_argument("snapshot")
    prom.set_defaults(func=_cmd_prom)

    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Output piped into a pager/head that exited early; not an error.
        sys.stderr.close()
        return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
