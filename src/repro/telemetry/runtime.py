"""The telemetry runtime: active-instance plumbing and the span stack.

One :class:`Telemetry` owns a :class:`~repro.telemetry.metrics.MetricsRegistry`
plus per-thread span stacks, a bounded buffer of recently finished traces,
and a slow-query log.  Instrumented code always goes through the active
instance (``get_telemetry()``), which defaults to :class:`NullTelemetry` —
a fully inert twin — so the hot paths stay behaviorally and numerically
identical until someone opts in via ``enable_telemetry()`` or the scoped
``use_telemetry(t)`` context manager.

Locking discipline: the runtime's ``_lock`` only guards the trace/slow-query
deques and is never held while calling into other repro components, keeping
it a leaf lock for the runtime lock-order sanitizer.  Span stacks are
thread-local and need no lock at all.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from collections import deque

from .metrics import MetricsRegistry
from .tracing import NULL_SPAN, Span

__all__ = [
    "NullTelemetry",
    "Telemetry",
    "disable_telemetry",
    "enable_telemetry",
    "get_telemetry",
    "set_telemetry",
    "use_telemetry",
]


class Telemetry:
    """Live telemetry: spans, metrics, trace retention, slow-query log."""

    enabled = True

    def __init__(
        self,
        max_traces: int = 64,
        slow_query_seconds: float | None = None,
        max_slow_queries: int = 128,
    ):
        self.registry = MetricsRegistry()
        self.slow_query_seconds = slow_query_seconds
        self._local = threading.local()
        self._lock = threading.Lock()
        self._traces: deque[Span] = deque(maxlen=max_traces)
        self._slow: deque[Span] = deque(maxlen=max_slow_queries)

    # ---------------------------------------------------------------- spans
    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    @contextmanager
    def span(self, name: str, record: str | None = None, **attrs):
        """Open a child span of the current thread's active span.

        When the span closes, its duration is observed into the ``record``
        histogram (if given); a finished *root* span is retained as a trace
        and, past the slow-query threshold, logged as a slow query.
        """
        stack = self._stack()
        span = Span(name, attrs)
        if stack:
            stack[-1].children.append(span)
        stack.append(span)
        try:
            yield span
        finally:
            span.finish()
            stack.pop()
            if record is not None:
                self.registry.observe(record, span.duration_seconds)
            if not stack:
                self._retain(span)

    def current_span(self) -> Span | None:
        stack = self._stack()
        return stack[-1] if stack else None

    def adopt(self, root: Span) -> None:
        """Retain an externally built root span as a finished trace."""
        root.finish()
        self._retain(root)

    def _retain(self, root: Span) -> None:
        slow = (
            self.slow_query_seconds is not None
            and root.duration_seconds >= self.slow_query_seconds
        )
        with self._lock:
            self._traces.append(root)
            if slow:
                self._slow.append(root)
        if slow:
            self.registry.inc("query.slow")

    # -------------------------------------------------------------- metrics
    def inc(self, name: str, n: int | float = 1) -> None:
        self.registry.inc(name, n)

    def observe(self, name: str, value: float) -> None:
        self.registry.observe(name, value)

    def set_gauge(self, name: str, value: float) -> None:
        self.registry.set_gauge(name, value)

    # ------------------------------------------------------------- readback
    def traces(self) -> list[Span]:
        with self._lock:
            return list(self._traces)

    def last_trace(self) -> Span | None:
        with self._lock:
            return self._traces[-1] if self._traces else None

    def slow_queries(self) -> list[Span]:
        with self._lock:
            return list(self._slow)

    def reset(self) -> None:
        self.registry.reset()
        with self._lock:
            self._traces.clear()
            self._slow.clear()


class NullTelemetry:
    """Inert twin of :class:`Telemetry`; the default active instance.

    ``span`` hands back the shared :data:`NULL_SPAN` without allocating,
    and every metric call is a straight return, so instrumentation costs a
    dict-free method call and nothing else when telemetry is off.
    """

    enabled = False

    def __init__(self):
        self.registry = MetricsRegistry()
        self.slow_query_seconds = None

    @contextmanager
    def span(self, name: str, record: str | None = None, **attrs):
        yield NULL_SPAN

    def current_span(self):
        return None

    def adopt(self, root) -> None:
        return None

    def inc(self, name: str, n: int | float = 1) -> None:
        return None

    def observe(self, name: str, value: float) -> None:
        return None

    def set_gauge(self, name: str, value: float) -> None:
        return None

    def traces(self) -> list:
        return []

    def last_trace(self):
        return None

    def slow_queries(self) -> list:
        return []

    def reset(self) -> None:
        return None


_NULL = NullTelemetry()
_active: Telemetry | NullTelemetry = _NULL


def get_telemetry() -> Telemetry | NullTelemetry:
    """The active telemetry instance (NullTelemetry unless enabled)."""
    return _active


def set_telemetry(telemetry: Telemetry | NullTelemetry) -> Telemetry | NullTelemetry:
    """Install ``telemetry`` as the active instance; returns the previous one."""
    global _active
    previous = _active
    _active = telemetry
    return previous


def enable_telemetry(
    slow_query_seconds: float | None = None, max_traces: int = 64
) -> Telemetry:
    """Install and return a fresh live :class:`Telemetry`."""
    telemetry = Telemetry(
        max_traces=max_traces, slow_query_seconds=slow_query_seconds
    )
    set_telemetry(telemetry)
    return telemetry


def disable_telemetry() -> None:
    """Restore the inert default."""
    set_telemetry(_NULL)


@contextmanager
def use_telemetry(telemetry: Telemetry | NullTelemetry):
    """Scoped activation: installs ``telemetry``, restores the previous on exit."""
    previous = set_telemetry(telemetry)
    try:
        yield telemetry
    finally:
        set_telemetry(previous)
