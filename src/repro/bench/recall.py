"""Recall@k computation against exact ground truth."""

from __future__ import annotations

import numpy as np

__all__ = ["recall_at_k"]


def recall_at_k(result_ids, truth_ids, k: int) -> float:
    """Fraction of the exact top-k found, averaged over queries.

    ``result_ids``: per-query id lists (ragged ok); ``truth_ids``: (q, >=k)
    exact neighbour matrix.
    """
    truth_ids = np.asarray(truth_ids)
    if len(result_ids) != truth_ids.shape[0]:
        raise ValueError("result/truth query counts differ")
    hits = 0
    for qi, ids in enumerate(result_ids):
        truth = set(int(t) for t in truth_ids[qi, :k])
        hits += len(truth & set(int(i) for i in ids[:k]))
    return hits / (len(result_ids) * k)
