"""Benchmark harness: recall computation, dataset caching, table printers.

Every table and figure from the paper's evaluation section has a bench in
``benchmarks/`` that uses this package to generate workloads, run the
systems, and print rows in the paper's format.  Scale is controlled by the
``REPRO_BENCH_SCALE`` environment variable (default "small" keeps a full
bench run in CI-sized time; "paper" raises dataset sizes toward the paper's
shape-stability point).
"""

from .harness import BenchScale, bench_scale, cached_system, dataset_for
from .recall import recall_at_k
from .tables import format_table, print_table

__all__ = [
    "BenchScale",
    "bench_scale",
    "cached_system",
    "dataset_for",
    "format_table",
    "print_table",
    "recall_at_k",
]
