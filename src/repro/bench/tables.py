"""Plain-text table rendering for bench output (paper-style rows)."""

from __future__ import annotations

from typing import Any, Sequence

__all__ = ["format_table", "print_table"]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: str | None = None,
) -> str:
    """Render an aligned text table; floats get sensible precision."""

    def cell(value: Any) -> str:
        if isinstance(value, float):
            if value == 0:
                return "0"
            if abs(value) >= 100:
                return f"{value:,.0f}"
            if abs(value) >= 1:
                return f"{value:.2f}"
            return f"{value:.4f}"
        return str(value)

    grid = [[cell(v) for v in row] for row in rows]
    widths = [
        max(len(str(headers[i])), *(len(r[i]) for r in grid)) if grid else len(str(headers[i]))
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append("-+-".join("-" * w for w in widths))
    for row in grid:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def print_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: str | None = None,
) -> None:
    print("\n" + format_table(headers, rows, title=title) + "\n")
