"""Benchmark scaling and on-disk caching.

Index construction is the dominant cost of every bench (pure-Python HNSW),
so built systems are cached under ``.bench_cache/`` keyed by dataset,
system, and build parameters; re-runs load in seconds.  Delete the cache
directory to force rebuilds.

Scales:

=========  ============================  =========================
scale      SIFT-like / Deep-like size    hybrid (LDBC) scale factor
=========  ============================  =========================
smoke      2,000                         0.5
small      20,000 (default)              1.0
large      100,000                       3.0
=========  ============================  =========================

The paper's 100M/1B datasets are far beyond laptop Python; the bench
preserves the *ratios* that matter (10x for data scalability, 3x between
hybrid scale factors).
"""

from __future__ import annotations

import os
import pickle
from dataclasses import dataclass
from pathlib import Path

from ..datasets.vectors import VectorDataset, make_deep_like, make_sift_like

__all__ = [
    "BenchScale",
    "bench_scale",
    "cached_system",
    "dataset_for",
    "emit_profiles",
    "profiles_enabled",
]

_CACHE_DIR = Path(os.environ.get("REPRO_BENCH_CACHE", ".bench_cache"))


@dataclass(frozen=True)
class BenchScale:
    name: str
    vector_count: int
    query_count: int
    ldbc_scale_factor: float
    segment_size: int


_SCALES = {
    "smoke": BenchScale("smoke", 2_000, 20, 0.5, 1_000),
    "small": BenchScale("small", 20_000, 50, 1.0, 4_000),
    "large": BenchScale("large", 100_000, 100, 3.0, 16_000),
}


def bench_scale() -> BenchScale:
    """The active scale, from ``REPRO_BENCH_SCALE`` (default: small)."""
    name = os.environ.get("REPRO_BENCH_SCALE", "small").lower()
    if name not in _SCALES:
        raise ValueError(f"REPRO_BENCH_SCALE must be one of {sorted(_SCALES)}")
    return _SCALES[name]


def dataset_for(kind: str, n: int | None = None, num_queries: int | None = None) -> VectorDataset:
    """A SIFT-like or Deep-like dataset at the active scale, with ground truth."""
    scale = bench_scale()
    n = n or scale.vector_count
    num_queries = num_queries or scale.query_count
    if kind == "sift":
        dataset = make_sift_like(n, num_queries=num_queries)
    elif kind == "deep":
        dataset = make_deep_like(n, num_queries=num_queries)
    else:
        raise ValueError("kind must be 'sift' or 'deep'")
    return dataset.with_ground_truth(100 if n >= 100 else n)


def embedding_store_for(dataset, segment_size: int, attr: str = "emb"):
    """A standalone EmbeddingStore (no graph) bulk-loaded with a dataset.

    Used by the scalability benches, which exercise the distributed vector
    path without needing vertices or GSQL.
    """
    import numpy as np

    from ..core.embedding import EmbeddingType
    from ..core.service import EmbeddingStore
    from ..types import IndexType

    embedding = EmbeddingType(
        name=attr,
        dimension=dataset.dim,
        model=dataset.name,
        index=IndexType.HNSW,
        metric=dataset.metric,
    )
    store = EmbeddingStore("Bench", embedding, segment_size)
    store.bulk_load(
        np.arange(len(dataset), dtype=np.int64), dataset.vectors, tid=1
    )
    return store


def cached_system(key: str, builder):
    """Build-or-load a benchmark subject (pickled under .bench_cache/).

    ``builder()`` runs on a cache miss; its return value must be picklable.
    The timings measured during the original build are preserved on the
    object, so Table 2 stays meaningful across cached runs.
    """
    _CACHE_DIR.mkdir(parents=True, exist_ok=True)
    path = _CACHE_DIR / f"{key}.pkl"
    if path.exists():
        with open(path, "rb") as fh:
            return pickle.load(fh)
    obj = builder()
    with open(path, "wb") as fh:
        pickle.dump(obj, fh, protocol=pickle.HIGHEST_PROTOCOL)
    return obj


def profiles_enabled() -> bool:
    """Whether benches should emit per-query telemetry profiles.

    Opt-in via ``REPRO_BENCH_PROFILES=1``: profiling turns telemetry on for
    the profiled queries, which perturbs the timings the benches report, so
    it never runs by default.
    """
    return os.environ.get("REPRO_BENCH_PROFILES", "") == "1"


def emit_profiles(name: str, profiles, results_dir="bench_results", force: bool = False):
    """Write per-query :class:`~repro.telemetry.QueryProfile`s as JSON.

    ``profiles`` is a list of QueryProfile (or already-dict) entries;
    returns the output path, or None when profiling is not enabled (pass
    ``force=True`` to write regardless, e.g. from a dedicated bench).
    """
    if not profiles_enabled() and not force:
        return None
    import json

    out_dir = Path(results_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    payload = [p.to_dict() if hasattr(p, "to_dict") else p for p in profiles]
    path = out_dir / f"PROFILES_{name}.json"
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
    return path
