"""Synthetic datasets standing in for the paper's corpora.

SIFT100M/SIFT1B and Deep100M/Deep1B are multi-GB downloads unavailable
offline; :mod:`vectors` generates seeded clustered datasets with the same
dimensionalities and value distributions (scaled down; the 10x size ratios
used by the scalability study are preserved).  :mod:`ldbc` generates an
LDBC-SNB-like social network (the paper augments SNB with embeddings for
the hybrid-search study), and :mod:`workloads` defines the IC-style hybrid
query analogs of Sec. 6.5.
"""

from .ldbc import LDBCConfig, LDBCDataset, generate_ldbc, load_ldbc_into
from .vectors import (
    VectorDataset,
    ground_truth,
    make_deep_like,
    make_queries,
    make_sift_like,
)
from .workloads import IC_QUERIES, ICQuerySpec, build_ic_query

__all__ = [
    "IC_QUERIES",
    "ICQuerySpec",
    "LDBCConfig",
    "LDBCDataset",
    "VectorDataset",
    "build_ic_query",
    "generate_ldbc",
    "ground_truth",
    "load_ldbc_into",
    "make_deep_like",
    "make_queries",
    "make_sift_like",
]
