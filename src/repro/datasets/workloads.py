"""IC-style hybrid query workloads (paper Sec. 6.5, Tables 3-4).

The paper modifies LDBC SNB interactive-complex (IC) queries that involve
the KNOWS edge, varies the number of KNOWS repetitions (2-4 hops), collects
the matched Message vertices into a global accumulator, and finishes with a
top-k vector search over that candidate set.

Each :class:`ICQuerySpec` builds the GSQL procedure for a given hop count.
The five analogs reproduce the candidate-set profile the paper reports:

- **IC3**  - messages by k-hop friends with *two* selective attribute
  filters (near-empty candidate sets: 0-100 in the paper);
- **IC5**  - all messages by k-hop friends (millions in the paper; the
  largest set here);
- **IC6**  - posts by k-hop friends in one language (moderate, ~1-10k);
- **IC9**  - the 20 most recent messages by k-hop friends (fixed 20);
- **IC11** - posts by k-hop friends with a length cap (moderate-large).

The module also hosts the seeded **zipfian access-skew** helpers the
tiered-storage layer uses (:func:`zipfian_weights`,
:func:`zipfian_access_sequence`): real serving traffic concentrates on a
small hot set of segments, which is exactly the distribution hot/cold
promotion must be exercised under.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

__all__ = [
    "IC_QUERIES",
    "ICQuerySpec",
    "build_ic_query",
    "zipfian_access_sequence",
    "zipfian_weights",
]


def zipfian_weights(num_items: int, skew: float = 1.1) -> np.ndarray:
    """Zipf probabilities over ranks 0..n-1: ``p_i ∝ 1 / (i+1)^skew``.

    Rank 0 is the hottest item.  ``skew`` ≈ 1 is the classic web-traffic
    shape; larger values concentrate mass faster.
    """
    if num_items <= 0:
        raise ValueError("num_items must be positive")
    if skew <= 0:
        raise ValueError("skew must be positive")
    weights = 1.0 / np.power(np.arange(1, num_items + 1, dtype=np.float64), skew)
    return weights / weights.sum()


def zipfian_access_sequence(
    num_items: int,
    length: int,
    skew: float = 1.1,
    seed: int = 0,
    permute: bool = False,
) -> np.ndarray:
    """Seeded sequence of item indexes with zipfian access skew.

    With ``permute`` the rank→item mapping is shuffled (also seeded), so
    the hot set is not simply the lowest indexes — useful when item order
    correlates with insertion order, as segment numbers do.
    """
    if length < 0:
        raise ValueError("length must be non-negative")
    rng = np.random.default_rng(seed)
    weights = zipfian_weights(num_items, skew)
    ranks = rng.choice(num_items, size=length, p=weights)
    if not permute:
        return ranks
    mapping = rng.permutation(num_items)
    return mapping[ranks]


@dataclass(frozen=True)
class ICQuerySpec:
    """One IC analog: a name and a GSQL builder parameterized by hops."""

    name: str
    description: str
    builder: Callable[[int], str]

    def gsql(self, hops: int) -> str:
        return self.builder(hops)


def _friends_block(hops: int) -> str:
    """The k-hop KNOWS expansion every IC analog starts with."""
    return (
        "  Friends = SELECT p FROM (s:Person) -[:knows*{hops}]-> (p:Person) "
        "WHERE s.id == pid;\n"
    ).format(hops=hops)


def _ic3(hops: int) -> str:
    return (
        f"CREATE QUERY IC3_h{hops}(INT pid, List<FLOAT> topic_emb, INT k) {{\n"
        + _friends_block(hops)
        + """  Msgs1 = SELECT m FROM (p:Friends) <-[:postHasCreator]- (m:Post)
           WHERE m.length > 2400 AND m.language == "jp";
  Msgs2 = SELECT m FROM (p:Friends) <-[:commentHasCreator]- (m:Comment)
           WHERE m.length > 1150;
  Candidates = Msgs1 UNION Msgs2;
  TopK = VectorSearch({Post.content_emb, Comment.content_emb}, topic_emb, k,
                      {filter: Candidates});
  PRINT TopK;
}
"""
    )


def _ic5(hops: int) -> str:
    return (
        f"CREATE QUERY IC5_h{hops}(INT pid, List<FLOAT> topic_emb, INT k) {{\n"
        + _friends_block(hops)
        + """  Msgs1 = SELECT m FROM (p:Friends) <-[:postHasCreator]- (m:Post);
  Msgs2 = SELECT m FROM (p:Friends) <-[:commentHasCreator]- (m:Comment);
  Candidates = Msgs1 UNION Msgs2;
  TopK = VectorSearch({Post.content_emb, Comment.content_emb}, topic_emb, k,
                      {filter: Candidates});
  PRINT TopK;
}
"""
    )


def _ic6(hops: int) -> str:
    return (
        f"CREATE QUERY IC6_h{hops}(INT pid, List<FLOAT> topic_emb, INT k) {{\n"
        + _friends_block(hops)
        + """  Candidates = SELECT m FROM (p:Friends) <-[:postHasCreator]- (m:Post)
               WHERE m.language == "fr";
  TopK = VectorSearch({Post.content_emb}, topic_emb, k, {filter: Candidates});
  PRINT TopK;
}
"""
    )


def _ic9(hops: int) -> str:
    return (
        f"CREATE QUERY IC9_h{hops}(INT pid, List<FLOAT> topic_emb, INT k) {{\n"
        + _friends_block(hops)
        + """  Candidates = SELECT m FROM (p:Friends) <-[:postHasCreator]- (m:Post)
               ORDER BY m.creationDate DESC LIMIT 20;
  TopK = VectorSearch({Post.content_emb}, topic_emb, k, {filter: Candidates});
  PRINT TopK;
}
"""
    )


def _ic11(hops: int) -> str:
    return (
        f"CREATE QUERY IC11_h{hops}(INT pid, List<FLOAT> topic_emb, INT k) {{\n"
        + _friends_block(hops)
        + """  Candidates = SELECT m FROM (p:Friends) <-[:postHasCreator]- (m:Post)
               WHERE m.length < 1700;
  TopK = VectorSearch({Post.content_emb}, topic_emb, k, {filter: Candidates});
  PRINT TopK;
}
"""
    )


IC_QUERIES: dict[str, ICQuerySpec] = {
    "IC3": ICQuerySpec("IC3", "two selective filters -> near-empty candidates", _ic3),
    "IC5": ICQuerySpec("IC5", "all friend messages -> largest candidate set", _ic5),
    "IC6": ICQuerySpec("IC6", "language filter -> moderate candidates", _ic6),
    "IC9": ICQuerySpec("IC9", "20 most recent -> fixed-size candidates", _ic9),
    "IC11": ICQuerySpec("IC11", "length cap -> moderate-large candidates", _ic11),
}


def build_ic_query(name: str, hops: int) -> tuple[str, str]:
    """(installed_query_name, gsql_text) for one IC analog at a hop count."""
    spec = IC_QUERIES[name]
    return f"{name}_h{hops}", spec.gsql(hops)
