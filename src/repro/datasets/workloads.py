"""IC-style hybrid query workloads (paper Sec. 6.5, Tables 3-4).

The paper modifies LDBC SNB interactive-complex (IC) queries that involve
the KNOWS edge, varies the number of KNOWS repetitions (2-4 hops), collects
the matched Message vertices into a global accumulator, and finishes with a
top-k vector search over that candidate set.

Each :class:`ICQuerySpec` builds the GSQL procedure for a given hop count.
The five analogs reproduce the candidate-set profile the paper reports:

- **IC3**  - messages by k-hop friends with *two* selective attribute
  filters (near-empty candidate sets: 0-100 in the paper);
- **IC5**  - all messages by k-hop friends (millions in the paper; the
  largest set here);
- **IC6**  - posts by k-hop friends in one language (moderate, ~1-10k);
- **IC9**  - the 20 most recent messages by k-hop friends (fixed 20);
- **IC11** - posts by k-hop friends with a length cap (moderate-large).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

__all__ = ["IC_QUERIES", "ICQuerySpec", "build_ic_query"]


@dataclass(frozen=True)
class ICQuerySpec:
    """One IC analog: a name and a GSQL builder parameterized by hops."""

    name: str
    description: str
    builder: Callable[[int], str]

    def gsql(self, hops: int) -> str:
        return self.builder(hops)


def _friends_block(hops: int) -> str:
    """The k-hop KNOWS expansion every IC analog starts with."""
    return (
        "  Friends = SELECT p FROM (s:Person) -[:knows*{hops}]-> (p:Person) "
        "WHERE s.id == pid;\n"
    ).format(hops=hops)


def _ic3(hops: int) -> str:
    return (
        f"CREATE QUERY IC3_h{hops}(INT pid, List<FLOAT> topic_emb, INT k) {{\n"
        + _friends_block(hops)
        + """  Msgs1 = SELECT m FROM (p:Friends) <-[:postHasCreator]- (m:Post)
           WHERE m.length > 2400 AND m.language == "jp";
  Msgs2 = SELECT m FROM (p:Friends) <-[:commentHasCreator]- (m:Comment)
           WHERE m.length > 1150;
  Candidates = Msgs1 UNION Msgs2;
  TopK = VectorSearch({Post.content_emb, Comment.content_emb}, topic_emb, k,
                      {filter: Candidates});
  PRINT TopK;
}
"""
    )


def _ic5(hops: int) -> str:
    return (
        f"CREATE QUERY IC5_h{hops}(INT pid, List<FLOAT> topic_emb, INT k) {{\n"
        + _friends_block(hops)
        + """  Msgs1 = SELECT m FROM (p:Friends) <-[:postHasCreator]- (m:Post);
  Msgs2 = SELECT m FROM (p:Friends) <-[:commentHasCreator]- (m:Comment);
  Candidates = Msgs1 UNION Msgs2;
  TopK = VectorSearch({Post.content_emb, Comment.content_emb}, topic_emb, k,
                      {filter: Candidates});
  PRINT TopK;
}
"""
    )


def _ic6(hops: int) -> str:
    return (
        f"CREATE QUERY IC6_h{hops}(INT pid, List<FLOAT> topic_emb, INT k) {{\n"
        + _friends_block(hops)
        + """  Candidates = SELECT m FROM (p:Friends) <-[:postHasCreator]- (m:Post)
               WHERE m.language == "fr";
  TopK = VectorSearch({Post.content_emb}, topic_emb, k, {filter: Candidates});
  PRINT TopK;
}
"""
    )


def _ic9(hops: int) -> str:
    return (
        f"CREATE QUERY IC9_h{hops}(INT pid, List<FLOAT> topic_emb, INT k) {{\n"
        + _friends_block(hops)
        + """  Candidates = SELECT m FROM (p:Friends) <-[:postHasCreator]- (m:Post)
               ORDER BY m.creationDate DESC LIMIT 20;
  TopK = VectorSearch({Post.content_emb}, topic_emb, k, {filter: Candidates});
  PRINT TopK;
}
"""
    )


def _ic11(hops: int) -> str:
    return (
        f"CREATE QUERY IC11_h{hops}(INT pid, List<FLOAT> topic_emb, INT k) {{\n"
        + _friends_block(hops)
        + """  Candidates = SELECT m FROM (p:Friends) <-[:postHasCreator]- (m:Post)
               WHERE m.length < 1700;
  TopK = VectorSearch({Post.content_emb}, topic_emb, k, {filter: Candidates});
  PRINT TopK;
}
"""
    )


IC_QUERIES: dict[str, ICQuerySpec] = {
    "IC3": ICQuerySpec("IC3", "two selective filters -> near-empty candidates", _ic3),
    "IC5": ICQuerySpec("IC5", "all friend messages -> largest candidate set", _ic5),
    "IC6": ICQuerySpec("IC6", "language filter -> moderate candidates", _ic6),
    "IC9": ICQuerySpec("IC9", "20 most recent -> fixed-size candidates", _ic9),
    "IC11": ICQuerySpec("IC11", "length cap -> moderate-large candidates", _ic11),
}


def build_ic_query(name: str, hops: int) -> tuple[str, str]:
    """(installed_query_name, gsql_text) for one IC analog at a hop count."""
    spec = IC_QUERIES[name]
    return f"{name}_h{hops}", spec.gsql(hops)
