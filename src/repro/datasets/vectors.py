"""Synthetic SIFT-like and Deep-like vector datasets (paper Table 1).

- **SIFT** vectors are 128-d local image descriptors with non-negative
  integer-valued components in [0, ~218] and strong cluster structure; the
  generator emulates that with a gaussian-mixture, clipped and rounded to
  the uint8-ish range, searched under L2.
- **Deep** vectors are 96-d L2-normalized CNN descriptors; the generator
  normalizes gaussian-mixture draws onto the unit sphere.

Queries are drawn from the same mixture (held-out draws), matching the
benchmark datasets where queries come from the data distribution.
:func:`ground_truth` computes exact top-k via blocked brute force so recall
can be evaluated without materializing an n x n distance matrix.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..types import Metric, pairwise_distances

__all__ = [
    "VectorDataset",
    "ground_truth",
    "make_deep_like",
    "make_queries",
    "make_sift_like",
]


@dataclass
class VectorDataset:
    """Base vectors + queries + exact neighbours for one benchmark dataset."""

    name: str
    vectors: np.ndarray  # (n, dim) float32
    queries: np.ndarray  # (q, dim) float32
    metric: Metric
    gt_ids: np.ndarray | None = None  # (q, k) exact neighbour row ids

    @property
    def dim(self) -> int:
        return int(self.vectors.shape[1])

    def __len__(self) -> int:
        return int(self.vectors.shape[0])

    def with_ground_truth(self, k: int = 100) -> "VectorDataset":
        if self.gt_ids is None or self.gt_ids.shape[1] < k:
            self.gt_ids = ground_truth(self.vectors, self.queries, k, self.metric)
        return self


def _mixture(
    n: int,
    dim: int,
    rng: np.random.Generator,
    num_clusters: int = 32,
    spread: float = 0.4,
) -> np.ndarray:
    """Overlapping gaussian mixture emulating descriptor datasets.

    The cluster separation is deliberately *small* relative to the
    intra-cluster noise (``spread`` = 0.4 of the unit noise).  At laptop
    scale (10^4-10^5 vectors) strongly separated clusters make ANN search
    trivially easy — every index hits recall 1.0 at minimal ef, flattening
    the recall/throughput trade-off the paper's Figures 7-8 sweep.  Heavily
    overlapping clusters keep the true neighbours ambiguous, reproducing a
    genuine recall-vs-ef curve (~0.6 at ef=10 up to ~1.0 at ef=512), which
    is the regime 100M-scale SIFT/Deep operate in.
    """
    centers = rng.standard_normal((num_clusters, dim)).astype(np.float32) * spread
    assignment = rng.integers(0, num_clusters, size=n)
    noise = rng.standard_normal((n, dim)).astype(np.float32)
    return centers[assignment] + noise


def make_sift_like(
    n: int,
    num_queries: int = 100,
    seed: int = 42,
) -> VectorDataset:
    """128-d SIFT-like vectors: clustered, non-negative, uint8-valued, L2."""
    dim = 128
    rng = np.random.default_rng(seed)
    raw = _mixture(n + num_queries, dim, rng)
    # Map to the SIFT value range: shift/scale into [0, 218] and round.
    lo, hi = raw.min(), raw.max()
    scaled = (raw - lo) / max(hi - lo, 1e-9) * 218.0
    data = np.round(scaled).astype(np.float32)
    return VectorDataset(
        name=f"sift-like-{n}",
        vectors=data[:n],
        queries=data[n:],
        metric=Metric.L2,
    )


def make_deep_like(
    n: int,
    num_queries: int = 100,
    seed: int = 43,
) -> VectorDataset:
    """96-d Deep-like vectors: clustered and L2-normalized, searched under L2."""
    dim = 96
    rng = np.random.default_rng(seed)
    raw = _mixture(n + num_queries, dim, rng, spread=0.35)
    norms = np.linalg.norm(raw, axis=1, keepdims=True)
    norms[norms == 0.0] = 1.0
    data = (raw / norms).astype(np.float32)
    return VectorDataset(
        name=f"deep-like-{n}",
        vectors=data[:n],
        queries=data[n:],
        metric=Metric.L2,
    )


def make_queries(dataset: VectorDataset, num: int, seed: int = 7) -> np.ndarray:
    """Extra query vectors: perturbed held-out base vectors."""
    rng = np.random.default_rng(seed)
    idx = rng.integers(0, len(dataset), size=num)
    noise = rng.standard_normal((num, dataset.dim)).astype(np.float32)
    scale = float(np.std(dataset.vectors)) * 0.05
    return dataset.vectors[idx] + noise * scale


def ground_truth(
    vectors: np.ndarray,
    queries: np.ndarray,
    k: int,
    metric: Metric,
    block: int = 4096,
) -> np.ndarray:
    """Exact top-k row ids per query, via blocked brute force."""
    queries = np.asarray(queries, dtype=np.float32)
    n = vectors.shape[0]
    k = min(k, n)
    best_d = np.full((queries.shape[0], k), np.inf, dtype=np.float32)
    best_i = np.zeros((queries.shape[0], k), dtype=np.int64)
    for start in range(0, n, block):
        stop = min(start + block, n)
        dists = pairwise_distances(queries, vectors[start:stop], metric)
        ids = np.arange(start, stop, dtype=np.int64)
        merged_d = np.concatenate([best_d, dists], axis=1)
        merged_i = np.concatenate(
            [best_i, np.broadcast_to(ids, dists.shape)], axis=1
        )
        order = np.argpartition(merged_d, k - 1, axis=1)[:, :k]
        rows = np.arange(queries.shape[0])[:, None]
        best_d = np.take_along_axis(merged_d, order, axis=1)
        best_i = np.take_along_axis(merged_i, order, axis=1)
    final = np.argsort(best_d, axis=1, kind="stable")
    rows = np.arange(queries.shape[0])[:, None]
    return np.take_along_axis(best_i, final, axis=1)
