"""LDBC-SNB-like social network generator (paper Sec. 4.1, 6.5).

The paper evaluates hybrid search on LDBC SNB at SF10/SF30 with a content
embedding added to every Message (Post or Comment), sampled from SIFT100M.
This generator produces a seeded, laptop-scale analog with the structural
properties that drive the benchmark's candidate-set sizes:

- Person–knows–Person with a preferential-attachment (power-law) degree
  distribution, so k-hop friend neighbourhoods grow steeply with hops;
- Posts and Comments with hasCreator edges (split per type because edge
  types have fixed endpoints), reply chains, languages, lengths, creation
  dates, and country placement;
- SIFT-like content embeddings on every message.

``scale_factor=1`` is deliberately small; the Table 3 vs Table 4 comparison
only needs the 1:3 ratio between the two runs, which
:func:`generate_ldbc` preserves for any pair of scale factors.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..types import Metric
from .vectors import make_sift_like

__all__ = ["LDBCConfig", "LDBCDataset", "LDBC_SCHEMA_GSQL", "generate_ldbc", "load_ldbc_into"]

_FIRST_NAMES = [
    "Alice", "Bob", "Carlos", "Dana", "Erik", "Fatima", "Gustav", "Hana",
    "Ivan", "Jun", "Klara", "Liam", "Mina", "Noah", "Olga", "Pedro",
]

_COUNTRIES = [
    "United States", "France", "Germany", "Japan", "Brazil", "India",
    "Kenya", "Norway",
]

_LANGUAGES = ["en", "fr", "de", "jp", "pt"]


@dataclass
class LDBCConfig:
    """Knobs for the generator; defaults give a small test-sized graph."""

    scale_factor: float = 1.0
    persons_per_sf: int = 300
    posts_per_person: float = 4.0
    comments_per_post: float = 2.0
    knows_mean_degree: int = 10
    embedding_dim: int = 32
    seed: int = 1234

    @property
    def num_persons(self) -> int:
        return max(10, int(self.persons_per_sf * self.scale_factor))


@dataclass
class LDBCDataset:
    """Generated rows, ready for :func:`load_ldbc_into`."""

    config: LDBCConfig
    persons: list[dict] = field(default_factory=list)
    posts: list[dict] = field(default_factory=list)
    comments: list[dict] = field(default_factory=list)
    countries: list[dict] = field(default_factory=list)
    knows: list[tuple[int, int]] = field(default_factory=list)
    post_creator: list[tuple[int, int]] = field(default_factory=list)
    comment_creator: list[tuple[int, int]] = field(default_factory=list)
    reply_of: list[tuple[int, int]] = field(default_factory=list)  # comment -> post
    person_country: list[tuple[int, str]] = field(default_factory=list)
    post_embeddings: np.ndarray | None = None
    comment_embeddings: np.ndarray | None = None

    @property
    def num_messages(self) -> int:
        return len(self.posts) + len(self.comments)


def generate_ldbc(config: LDBCConfig | None = None) -> LDBCDataset:
    config = config or LDBCConfig()
    rng = np.random.default_rng(config.seed)
    data = LDBCDataset(config=config)
    n_person = config.num_persons

    for name in _COUNTRIES:
        data.countries.append({"name": name})

    for pid in range(n_person):
        data.persons.append(
            {
                "id": pid,
                "firstName": _FIRST_NAMES[pid % len(_FIRST_NAMES)],
                "birthday": int(rng.integers(0, 10_000)),
            }
        )
        data.person_country.append((pid, _COUNTRIES[int(rng.integers(0, len(_COUNTRIES)))]))

    # knows: preferential attachment for a power-law degree distribution.
    edges: set[tuple[int, int]] = set()
    targets: list[int] = [0]
    for pid in range(1, n_person):
        degree = max(1, int(rng.poisson(config.knows_mean_degree / 2)))
        for _ in range(degree):
            other = int(targets[int(rng.integers(0, len(targets)))])
            if other != pid:
                edge = (min(pid, other), max(pid, other))
                if edge not in edges:
                    edges.add(edge)
                    targets.extend([pid, other])
        targets.append(pid)
    data.knows = sorted(edges)

    # Posts: activity is also skewed (prolific users post more).
    activity = rng.pareto(2.0, n_person) + 0.2
    activity = activity / activity.sum()
    total_posts = int(config.posts_per_person * n_person)
    authors = rng.choice(n_person, size=total_posts, p=activity)
    base_date = 1_300_000_000
    for post_id, author in enumerate(authors):
        data.posts.append(
            {
                "id": post_id,
                "language": _LANGUAGES[int(rng.integers(0, len(_LANGUAGES)))],
                "length": int(rng.integers(10, 2500)),
                "creationDate": base_date + int(rng.integers(0, 100_000_000)),
            }
        )
        data.post_creator.append((post_id, int(author)))

    # Comments: reply to a post; commenter biased toward the author's friends.
    neighbors: dict[int, list[int]] = {}
    for a, b in data.knows:
        neighbors.setdefault(a, []).append(b)
        neighbors.setdefault(b, []).append(a)
    total_comments = int(config.comments_per_post * total_posts)
    comment_posts = rng.integers(0, max(total_posts, 1), size=total_comments)
    for comment_id, post_id in enumerate(comment_posts):
        author_of_post = data.post_creator[int(post_id)][1]
        friends = neighbors.get(author_of_post)
        if friends and rng.random() < 0.7:
            commenter = int(friends[int(rng.integers(0, len(friends)))])
        else:
            commenter = int(rng.integers(0, n_person))
        data.comments.append(
            {
                "id": comment_id,
                "length": int(rng.integers(5, 1200)),
                "creationDate": base_date + int(rng.integers(0, 100_000_000)),
            }
        )
        data.comment_creator.append((comment_id, commenter))
        data.reply_of.append((comment_id, int(post_id)))

    # SIFT-like content embeddings for all messages (paper Sec. 6.5 samples
    # Message embeddings from SIFT100M).
    sift = make_sift_like(
        data.num_messages, num_queries=1, seed=config.seed + 1,
    )
    all_vecs = sift.vectors[:, : config.embedding_dim].astype(np.float32)
    data.post_embeddings = all_vecs[: len(data.posts)]
    data.comment_embeddings = all_vecs[len(data.posts):]
    return data


LDBC_SCHEMA_GSQL = """
CREATE VERTEX Person (id INT PRIMARY KEY, firstName STRING, birthday INT);
CREATE VERTEX Post (id INT PRIMARY KEY, language STRING, length INT, creationDate INT);
CREATE VERTEX Comment (id INT PRIMARY KEY, length INT, creationDate INT);
CREATE VERTEX Country (name STRING PRIMARY KEY);
CREATE UNDIRECTED EDGE knows (FROM Person, TO Person);
CREATE DIRECTED EDGE postHasCreator (FROM Post, TO Person);
CREATE DIRECTED EDGE commentHasCreator (FROM Comment, TO Person);
CREATE DIRECTED EDGE replyOf (FROM Comment, TO Post);
CREATE DIRECTED EDGE isLocatedIn (FROM Person, TO Country);
"""


def load_ldbc_into(db, data: LDBCDataset, num_threads: int = 1) -> None:
    """Create the SNB schema in ``db`` and load the generated dataset."""
    dim = data.config.embedding_dim
    db.run_gsql(LDBC_SCHEMA_GSQL)
    db.run_gsql(
        f"""
        ALTER VERTEX Post ADD EMBEDDING ATTRIBUTE content_emb
          (DIMENSION = {dim}, MODEL = SIFT, INDEX = HNSW, DATATYPE = FLOAT, METRIC = L2);
        ALTER VERTEX Comment ADD EMBEDDING ATTRIBUTE content_emb
          (DIMENSION = {dim}, MODEL = SIFT, INDEX = HNSW, DATATYPE = FLOAT, METRIC = L2);
        """
    )
    db.bulk_load_vertices("Country", data.countries)
    db.bulk_load_vertices("Person", data.persons)
    db.bulk_load_vertices("Post", data.posts)
    db.bulk_load_vertices("Comment", data.comments)
    db.bulk_load_edges("knows", data.knows)
    db.bulk_load_edges("postHasCreator", data.post_creator)
    db.bulk_load_edges("commentHasCreator", data.comment_creator)
    db.bulk_load_edges("replyOf", data.reply_of)
    db.bulk_load_edges("isLocatedIn", data.person_country)
    db.bulk_load_embeddings(
        "Post", "content_emb",
        [p["id"] for p in data.posts], data.post_embeddings,
        num_threads=num_threads,
    )
    db.bulk_load_embeddings(
        "Comment", "content_emb",
        [c["id"] for c in data.comments], data.comment_embeddings,
        num_threads=num_threads,
    )
    db.vacuum()
