"""An interactive GSQL shell: ``python -m repro.shell``.

A minimal REPL over one in-memory :class:`TigerVectorDB`.  Statements end
with ``;`` (multi-line input is accumulated until then).  Meta-commands:

=============  =============================================================
``\\h``         help
``\\schema``    list vertex/edge types and embedding attributes
``\\explain``   show the physical plan of the next SELECT instead of running
``\\seed N D``  load N random D-dim vectors into a demo Item vertex
``\\serve``     drive the seeded Item data through a concurrent QueryServer
``\\q``         quit
=============  =============================================================

Example session::

    gsql> CREATE VERTEX Doc (id INT PRIMARY KEY, title STRING);
    gsql> ALTER VERTEX Doc ADD EMBEDDING ATTRIBUTE emb
          (DIMENSION = 8, METRIC = L2);
    gsql> \\seed 100 8
    gsql> SELECT s FROM (s:Item) ORDER BY VECTOR_DIST(s.emb, [0,0,0,0,0,0,0,0]) LIMIT 3;
"""

from __future__ import annotations

import sys

import numpy as np

from .core.database import TigerVectorDB
from .errors import ReproError
from .graph.vertex_set import RankedVertexSet, VertexSet
from .telemetry import Telemetry, format_snapshot, use_telemetry

__all__ = ["GSQLShell", "main"]

_HELP = """\
GSQL shell — statements end with ';'. Meta-commands:
  \\h            this help
  \\schema       show the catalog
  \\explain ...  print the plan of one SELECT block (no execution)
  \\seed N D     create an Item vertex type with N random D-dim embeddings
  \\serve [Q C M [S]] run Q queries at concurrency C through a QueryServer demo
                (M = hot-tier budget in MiB: enables tiered storage;
                 S > 1 = route through an elastic tier of S sharded servers
                 with a live mid-run rebalance, printing the ownership map,
                 rebalance count, and per-replica cache hit rates)
  \\stats        print the live telemetry metrics snapshot
  \\q            quit
Query parameters are not supported interactively — inline literals instead.
"""


class GSQLShell:
    """REPL state: one database plus an input buffer."""

    def __init__(self, db: TigerVectorDB | None = None, out=None):
        self.db = db or TigerVectorDB(segment_size=1024)
        self.out = out or sys.stdout
        self._buffer: list[str] = []
        #: Shell-owned telemetry, activated only around statement execution
        #: (scoped via use_telemetry, so embedding a shell in tests never
        #: leaks a live instance into the process-global slot).
        self.telemetry = Telemetry()

    # ------------------------------------------------------------- plumbing
    def _print(self, *parts) -> None:
        print(*parts, file=self.out)

    def _show_value(self, value) -> None:
        if isinstance(value, RankedVertexSet):
            for (vtype, vid), dist in value.ranking:
                self._print(f"  {vtype}({self.db.pk_for(vtype, vid)})  dist={dist:.4f}")
        elif isinstance(value, VertexSet):
            members = sorted(
                (vtype, self.db.pk_for(vtype, vid)) for vtype, vid in value
            )
            for vtype, pk in members[:50]:
                self._print(f"  {vtype}({pk})")
            if len(members) > 50:
                self._print(f"  ... {len(members) - 50} more")
        elif isinstance(value, list):
            for row in value[:50]:
                self._print(f"  {row}")
        elif value is not None:
            self._print(f"  {value}")

    # --------------------------------------------------------------- logic
    def handle_meta(self, line: str) -> bool:
        """Execute a meta-command; returns False when the shell should exit."""
        cmd, _, rest = line.strip().partition(" ")
        if cmd in ("\\q", "\\quit", "exit", "quit"):
            return False
        if cmd in ("\\h", "\\help"):
            self._print(_HELP)
        elif cmd == "\\schema":
            for name, vtype in self.db.schema.vertex_types.items():
                attrs = ", ".join(
                    f"{a.name} {a.attr_type.value}" + (" PK" if a.primary_key else "")
                    for a in vtype.attributes.values()
                )
                self._print(f"  VERTEX {name} ({attrs})")
                for emb in vtype.embeddings.values():
                    self._print(
                        f"    EMBEDDING {emb.name}: dim={emb.dimension} "
                        f"model={emb.model} index={emb.index.value} "
                        f"metric={emb.metric.value}"
                    )
            for name, etype in self.db.schema.edge_types.items():
                arrow = "->" if etype.directed else "--"
                self._print(f"  EDGE {name}: {etype.from_type} {arrow} {etype.to_type}")
        elif cmd == "\\explain":
            try:
                self._print(self.db.gsql.explain(rest))
            except ReproError as exc:
                self._print(f"error: {exc}")
        elif cmd == "\\seed":
            try:
                parts = rest.split()
                n, dim = int(parts[0]), int(parts[1])
            except (ValueError, IndexError):
                self._print("usage: \\seed N DIM")
                return True
            self._seed_demo(n, dim)
        elif cmd == "\\serve":
            parts = rest.split()
            try:
                queries = int(parts[0]) if parts else 200
                concurrency = int(parts[1]) if len(parts) > 1 else 8
                tier_mb = float(parts[2]) if len(parts) > 2 else None
                servers = int(parts[3]) if len(parts) > 3 else 1
            except ValueError:
                self._print(
                    "usage: \\serve [QUERIES [CONCURRENCY [TIER_MB [SERVERS]]]]"
                )
                return True
            if servers > 1:
                self._serve_elastic_demo(queries, concurrency, servers)
            else:
                self._serve_demo(queries, concurrency, tier_mb)
        elif cmd == "\\stats":
            self._print(format_snapshot(self.telemetry.registry.snapshot()))
        else:
            self._print(f"unknown meta-command {cmd!r} (\\h for help)")
        return True

    def _seed_demo(self, n: int, dim: int) -> None:
        if not self.db.schema.has_vertex_type("Item"):
            self.db.run_gsql(
                "CREATE VERTEX Item (id INT PRIMARY KEY, label STRING);"
                f"ALTER VERTEX Item ADD EMBEDDING ATTRIBUTE emb "
                f"(DIMENSION = {dim}, MODEL = demo, INDEX = HNSW, "
                f"DATATYPE = FLOAT, METRIC = L2);"
            )
        rng = np.random.default_rng(0)
        with self.db.begin() as txn:
            for i in range(n):
                txn.upsert_vertex("Item", i, {"label": f"item{i}"})
                txn.set_embedding("Item", i, "emb", rng.standard_normal(dim))
        self.db.vacuum()
        self._print(f"seeded {n} Item vertices with {dim}-dim embeddings")

    def _serve_demo(
        self, queries: int, concurrency: int, tier_mb: float | None = None
    ) -> None:
        """Spin up a QueryServer over the first embedding attribute and
        hammer it from ``concurrency`` client threads.  ``tier_mb`` turns
        on memory-budgeted tiered storage (DESIGN §12) before serving."""
        import threading
        import time

        from .serve import QueryServer, ServeConfig

        target = None
        for name, vtype in self.db.schema.vertex_types.items():
            for emb in vtype.embeddings.values():
                target = (f"{name}.{emb.name}", emb.dimension)
                break
            if target:
                break
        if target is None:
            self._print("no embedding attributes — try \\seed first")
            return
        attr, dim = target
        if queries < 1 or concurrency < 1:
            self._print("usage: \\serve [QUERIES [CONCURRENCY]]")
            return
        if tier_mb is not None and self.db.tier_manager is None:
            self.db.enable_tiering(budget_bytes=int(tier_mb * 1024 * 1024))
            self.db.vacuum()
        rng = np.random.default_rng(1)
        vectors = rng.standard_normal((queries, dim)).astype(np.float32)

        def client(worker_id: int, server: QueryServer) -> None:
            for qi in range(worker_id, queries, concurrency):
                try:
                    server.search([attr], vectors[qi], 5)
                except ReproError:
                    pass

        with use_telemetry(self.telemetry):
            config = ServeConfig(workers=min(4, concurrency))
            start = time.perf_counter()
            with QueryServer(self.db, config) as server:
                threads = [
                    threading.Thread(target=client, args=(i, server))
                    for i in range(concurrency)
                ]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join()
                stats = server.stats()
            wall = time.perf_counter() - start
        self._print(
            f"served {queries} queries on {attr} in {wall * 1e3:.1f} ms "
            f"({queries / wall:,.0f} QPS, concurrency {concurrency})"
        )
        counters = self.telemetry.registry.snapshot()["counters"]
        for name in sorted(counters):
            if name.startswith("serve."):
                self._print(f"  {name} = {counters[name]}")
        cache = stats["cache"]
        if cache is not None:
            for tenant in sorted(cache.get("per_tenant", {})):
                part = cache["per_tenant"][tenant]
                self._print(
                    f"  cache[{tenant}]: {part['hits']} hits / "
                    f"{part['misses']} misses, {part['entries']} entries"
                )
        tier = stats.get("tier")
        if tier is not None:
            self._print(
                f"  tier: {tier['hot_segments']} hot / {tier['cold_segments']} cold, "
                f"{tier['resident_bytes']:,} resident bytes "
                f"(budget {tier['budget_bytes']:,}), "
                f"{counters.get('tier.cold_hits', 0)} cold hits"
            )

    def _serve_elastic_demo(
        self, queries: int, concurrency: int, servers: int
    ) -> None:
        """Route the demo load through an elastic sharded tier (DESIGN §13)
        with one live rebalance mid-run, then print the router's view:
        ownership map, rebalance count, per-replica cache hit rates."""
        import threading
        import time

        from .elastic import ElasticTier
        from .serve import ServeConfig

        target = None
        for name, vtype in self.db.schema.vertex_types.items():
            for emb in vtype.embeddings.values():
                target = (f"{name}.{emb.name}", emb.dimension)
                break
            if target:
                break
        if target is None:
            self._print("no embedding attributes — try \\seed first")
            return
        attr, dim = target
        if queries < 1 or concurrency < 1 or servers < 2:
            self._print("usage: \\serve [QUERIES [CONCURRENCY [TIER_MB [SERVERS]]]]")
            return
        rng = np.random.default_rng(1)
        vectors = rng.standard_normal((queries, dim)).astype(np.float32)

        def client(worker_id: int, tier: ElasticTier) -> None:
            for qi in range(worker_id, queries, concurrency):
                try:
                    tier.search([attr], vectors[qi], 5)
                except ReproError:
                    pass

        with use_telemetry(self.telemetry):
            config = ServeConfig(workers=min(4, concurrency))
            start = time.perf_counter()
            with ElasticTier(self.db, num_servers=servers, config=config) as tier:
                threads = [
                    threading.Thread(target=client, args=(i, tier))
                    for i in range(concurrency)
                ]
                for thread in threads:
                    thread.start()
                tier.rebalance_evenly("default", [attr])
                for thread in threads:
                    thread.join()
                stats = tier.stats()
            wall = time.perf_counter() - start
        self._print(
            f"served {queries} queries on {attr} in {wall * 1e3:.1f} ms "
            f"({queries / wall:,.0f} QPS, {servers} servers, "
            f"concurrency {concurrency})"
        )
        self._print(
            f"  router: {stats['routed_requests']} routed, "
            f"{stats['route_retries']} retries, "
            f"{stats['rebalances']} rebalances, "
            f"{stats['cache_coherence_bypass']} coherence bypasses"
        )
        for server in sorted(stats["ownership"]):
            for tenant, groups in sorted(stats["ownership"][server].items()):
                self._print(f"  {server}: tenant {tenant} -> groups {groups}")
        for name, srv in sorted(stats["servers"].items()):
            self._print(
                f"  {name}: cache hit ratio {srv['cache_hit_ratio']:.1%} "
                f"({srv['cache_entries']} entries), "
                f"rebalances in/out {srv['rebalances_in']}/{srv['rebalances_out']}"
            )

    def handle_statement(self, text: str) -> None:
        try:
            with use_telemetry(self.telemetry):
                result = self.db.run_gsql(text)
        except ReproError as exc:
            self._print(f"error: {exc}")
            return
        for printed in result.prints:
            if isinstance(printed, dict) and "vertices" in printed:
                self._print(f"{printed.get('name', 'result')}:")
                for entry in printed["vertices"]:
                    self._print(f"  {entry}")
            else:
                self._print(printed)
        if result.result is not None and not result.prints:
            self._show_value(result.result)
        elif result.result is None and not result.prints:
            self._print("ok")
        if result.elapsed_seconds:
            self._print(f"({result.elapsed_seconds * 1e3:.2f} ms)")

    def feed(self, line: str) -> bool:
        """Process one input line; returns False when the shell should exit."""
        stripped = line.strip()
        if not self._buffer and (stripped.startswith("\\") or stripped in ("exit", "quit")):
            return self.handle_meta(stripped)
        if not stripped:
            return True
        self._buffer.append(line)
        if stripped.endswith(";") or stripped.endswith("}"):
            text = "\n".join(self._buffer)
            self._buffer = []
            self.handle_statement(text)
        return True

    # ----------------------------------------------------------------- run
    def run(self, input_stream=None) -> None:
        self._print("TigerVector GSQL shell — \\h for help, \\q to quit")
        stream = input_stream or sys.stdin
        interactive = stream is sys.stdin and sys.stdin.isatty()
        while True:
            if interactive:
                prompt = "  ... " if self._buffer else "gsql> "
                try:
                    line = input(prompt)
                except (EOFError, KeyboardInterrupt):
                    break
            else:
                line = stream.readline()
                if not line:
                    break
            if not self.feed(line):
                break
        self._print("bye")


def main() -> None:
    GSQLShell().run()


if __name__ == "__main__":
    main()
