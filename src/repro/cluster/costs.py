"""Hardware cost model (paper Sec. 6.2).

The paper's cost comparison: TigerVector runs on a GCP ``n2d-standard-32``
at $1.37/hour, while Amazon Neptune uses 1024 m-NCUs at $30.72/hour —
22.42x more expensive for less throughput.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["HardwareCost", "NEPTUNE_1024_MNCU", "TIGERVECTOR_N2D"]


@dataclass(frozen=True)
class HardwareCost:
    name: str
    dollars_per_hour: float
    description: str = ""

    def cost_ratio(self, other: "HardwareCost") -> float:
        """How many times more expensive this hardware is than ``other``."""
        return self.dollars_per_hour / other.dollars_per_hour

    def dollars_per_million_queries(self, qps: float) -> float:
        """Cost efficiency: dollars spent per million queries served."""
        if qps <= 0:
            return float("inf")
        queries_per_hour = qps * 3600.0
        return self.dollars_per_hour / queries_per_hour * 1e6


TIGERVECTOR_N2D = HardwareCost(
    "GCP n2d-standard-32", 1.37, "AMD EPYC 7B13, 32 vCPUs, 128GB (paper Sec. 6.1)"
)

NEPTUNE_1024_MNCU = HardwareCost(
    "Neptune 1024 m-NCU", 30.72, "largest Neptune Analytics instance (paper Sec. 6.2)"
)
