"""Coordinator/worker query execution model (paper Figure 5).

The coordinator prepares top-k requests in a send queue and dispatches them
to worker machines; each worker searches its local segments in parallel
across its cores and returns (id, distance) pairs to the coordinator's
response pool for the final merge.

:class:`ClusterSimulator` replays *measured* per-segment service times
through that pipeline.  Machines are greedy multi-core schedulers: a task's
segment searches are list-scheduled onto the machine's earliest-free cores,
which approximates the real thread-pool behaviour and keeps the simulation
fast enough to drive millions of simulated requests.

Resilience (paper Sec. 4.2's availability story, exercised by
``repro.faults``): when a :class:`~repro.faults.FaultInjector` and/or
:class:`~repro.faults.ResiliencePolicy` are attached, every request runs the
hardened pipeline — per-segment-job retry with exponential backoff and
replica failover, hedged duplicate dispatch for straggler machines, a
per-query deadline that converts overruns into
:class:`~repro.errors.QueryTimeoutError`, a degraded mode returning partial
top-k with an explicit ``coverage``, and a circuit breaker that quarantines
repeatedly-failing machines until a half-open probe re-admits them.  With no
faults and the default policy the resilient path is numerically identical
to the plain pipeline.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from ..errors import ClusterError, PartialResultError, QueryTimeoutError
from ..faults.injector import FaultInjector
from ..faults.resilience import CircuitBreaker, ResiliencePolicy
from ..telemetry import get_telemetry
from .machine import Machine, segment_holders
from .network import NetworkModel

__all__ = ["ClusterSimulator", "QueryTrace", "RequestOutcome"]


@dataclass
class QueryTrace:
    """Latency decomposition of one request on an idle cluster."""

    total_seconds: float
    dispatch_seconds: float
    per_machine_seconds: dict[int, float]
    network_seconds: float
    merge_seconds: float


@dataclass
class RequestOutcome:
    """Full result of one resilient request through the pipeline.

    ``coverage`` is the contract for degraded mode: the fraction of the
    request's segments whose responses made it into the merge.  ``1.0``
    means a complete answer; anything lower is an explicit partial result
    (only possible with ``allow_partial=True``).
    """

    completion_seconds: float
    coverage: float = 1.0
    total_segments: int = 0
    answered_segments: int = 0
    failed_segments: list[int] = field(default_factory=list)
    retries: int = 0
    hedges: int = 0
    timed_out: bool = False


class ClusterSimulator:
    """Replays segment service times through the coordinator/worker pipeline."""

    def __init__(
        self,
        machines: list[Machine],
        network: NetworkModel | None = None,
        dim: int = 128,
        k: int = 10,
        coordinator_overhead: float = 5e-5,
        merge_per_machine: float = 8e-6,
        injector: FaultInjector | None = None,
        policy: ResiliencePolicy | None = None,
    ):
        if not machines:
            raise ClusterError("simulator needs at least one machine")
        self.machines = machines
        self.network = network or NetworkModel()
        self.dim = dim
        self.k = k
        self.coordinator_overhead = coordinator_overhead
        self.merge_per_machine = merge_per_machine
        self.injector = injector
        self.policy = policy if policy is not None else ResiliencePolicy()
        self.breaker = CircuitBreaker(
            self.policy.breaker_threshold, self.policy.breaker_cooldown
        )
        # Earliest-free timestamps, one heap entry per core per machine.
        self._core_free: dict[int, list[float]] = {
            m.machine_id: [0.0] * m.cores for m in machines
        }
        for heap in self._core_free.values():
            heapq.heapify(heap)
        self._machine_by_id = {m.machine_id: m for m in machines}
        # segment -> machines holding a replica (paper Sec. 4.2: replicas
        # make high availability straightforward).
        self._holders = segment_holders(machines)

    def fail_machine(self, machine_id: int) -> None:
        """Mark a machine dead; its segments route to replica holders."""
        machine = self._machine_by_id.get(machine_id)
        if machine is None:
            raise ClusterError(f"no machine {machine_id}")
        machine.alive = False

    def recover_machine(self, machine_id: int) -> None:
        """Bring a machine back; also re-admits it past the circuit breaker."""
        machine = self._machine_by_id.get(machine_id)
        if machine is None:
            raise ClusterError(f"no machine {machine_id}")
        machine.alive = True
        self.breaker.reset(machine_id)

    def _assign_segments(self, segment_seconds: dict[int, float]) -> dict[int, list[int]]:
        """Pick one alive replica holder per segment (least-loaded first).

        Returns machine_id -> segment list.  Raises when a segment has no
        alive holder (data loss: replication factor too low).
        """
        assignment: dict[int, list[int]] = {}
        pending: dict[int, float] = {}  # work tentatively placed this request
        for seg_no, duration in segment_seconds.items():
            holders = [m for m in self._holders.get(seg_no, []) if m.alive]
            if not holders:
                raise ClusterError(
                    f"segment {seg_no} has no alive replica (increase the "
                    f"replication factor)"
                )
            chosen = self._least_loaded(holders, pending)
            assignment.setdefault(chosen.machine_id, []).append(seg_no)
            pending[chosen.machine_id] = pending.get(chosen.machine_id, 0.0) + duration
        return assignment

    def _least_loaded(self, holders: list[Machine], pending: dict[int, float]) -> Machine:
        return min(
            holders,
            key=lambda m: (
                self._core_free[m.machine_id][0]
                + pending.get(m.machine_id, 0.0) / m.cores
            ),
        )

    def reset(self) -> None:
        for machine in self.machines:
            heap = [0.0] * machine.cores
            heapq.heapify(heap)
            self._core_free[machine.machine_id] = heap

    # ----------------------------------------------------------- scheduling
    def _schedule_jobs(
        self, machine_id: int, arrive: float, durations: list[float]
    ) -> float:
        """List-schedule jobs onto a machine's cores; returns finish time."""
        self._machine_by_id[machine_id].record_jobs(len(durations))
        heap = self._core_free[machine_id]
        finish = arrive
        for duration in durations:
            core_free = heapq.heappop(heap)
            start = max(arrive, core_free)
            end = start + duration
            heapq.heappush(heap, end)
            finish = max(finish, end)
        return finish

    def simulate_request(
        self, start_time: float, segment_seconds: dict[int, float]
    ) -> float:
        """Completion time of one request entering at ``start_time``.

        ``segment_seconds`` maps segment number -> measured local search
        time.  Each segment runs on exactly one alive replica holder; the
        coordinator is machine 0 and doubles as a worker (Sec. 5.1), so its
        subtask skips the network hop.
        """
        return self.simulate_request_outcome(start_time, segment_seconds).completion_seconds

    def simulate_request_outcome(
        self, start_time: float, segment_seconds: dict[int, float]
    ) -> RequestOutcome:
        """One request through the resilient pipeline; see module docstring.

        Raises :class:`ClusterError` for an empty request or an
        unrecoverable segment with ``allow_partial=False``,
        :class:`QueryTimeoutError` when the deadline elapses (or nothing
        answered in time), and :class:`PartialResultError` when degraded
        coverage falls below ``policy.min_coverage``.
        """
        if not segment_seconds:
            raise ClusterError(
                "request has no segments to dispatch (empty assignment); "
                "refusing to fabricate a latency"
            )
        tel = get_telemetry()
        with tel.span(
            "coordinator.request",
            start_time=start_time,
            segments=len(segment_seconds),
        ) as rspan:
            outcome = self._request_outcome_impl(start_time, segment_seconds, tel)
            if tel.enabled:
                rspan.set(
                    coverage=outcome.coverage,
                    retries=outcome.retries,
                    hedges=outcome.hedges,
                    timed_out=outcome.timed_out,
                )
                tel.inc("coordinator.requests")
                if outcome.retries:
                    tel.inc("resilience.retries", outcome.retries)
                if outcome.hedges:
                    tel.inc("resilience.hedges", outcome.hedges)
                if outcome.coverage < 1.0:
                    tel.inc("resilience.degraded_queries")
        return outcome

    def _request_outcome_impl(
        self, start_time: float, segment_seconds: dict[int, float], tel
    ) -> RequestOutcome:
        policy = self.policy
        injector = self.injector
        if injector is not None:
            injector.advance(self.machines, start_time)
        dispatched = start_time + self.coordinator_overhead
        extra = injector.extra_network_delay(start_time) if injector else 0.0
        out_hop = self.network.transfer_seconds(self.network.query_dispatch_bytes(self.dim)) + extra
        back_hop = self.network.transfer_seconds(self.network.result_bytes(self.k)) + extra

        total = len(segment_seconds)
        failed: list[int] = []
        retries = 0
        hedges = 0

        placement, placement_stats = self._place_with_retries(
            segment_seconds, start_time, failed
        )
        retries += placement_stats

        # ---- dispatch + per-machine scheduling (drops, stragglers, crashes)
        seg_respond: dict[int, float] = {}
        seg_source: dict[int, int] = {}
        deferred: list[tuple[int, float, float]] = []  # (seg, duration, ready)
        for machine_id, jobs in placement.items():
            is_coordinator = machine_id == 0
            arrive = dispatched if is_coordinator else dispatched + out_hop
            with tel.span(
                "machine.execute",
                machine_id=machine_id,
                segments=[seg_no for seg_no, _ in jobs],
            ) as mspan:
                if (
                    injector is not None
                    and not is_coordinator
                    and injector.drop_dispatch(machine_id, start_time)
                ):
                    # Lost on the wire: the coordinator times out and resends.
                    retries += 1
                    arrive += policy.backoff(0) + out_hop
                    mspan.event("dispatch-resent")
                    injector.record(
                        "retry", at=start_time, machine_id=machine_id, detail="dispatch resent"
                    )
                slow = injector.slowdown(machine_id, start_time) if injector else 1.0
                finish = self._schedule_jobs(
                    machine_id, arrive, [duration * slow for _, duration in jobs]
                )
                crash_at = (
                    injector.crash_during(self._machine_by_id[machine_id], arrive, finish)
                    if injector is not None
                    else None
                )
                if crash_at is not None:
                    # Machine died mid-execution: every job fails over to a
                    # replica after one backoff (single failover level).
                    mspan.set(outcome="crashed", crash_at=crash_at)
                    for seg_no, duration in jobs:
                        deferred.append((seg_no, duration, crash_at + policy.backoff(0)))
                        retries += 1
                        injector.record(
                            "failover", at=crash_at, machine_id=machine_id, seg_no=seg_no
                        )
                    continue
                respond = finish if is_coordinator else finish + back_hop
                mspan.set(outcome="ok", simulated_finish=finish)
                for seg_no, _ in jobs:
                    seg_respond[seg_no] = respond
                    seg_source[seg_no] = machine_id

        for seg_no, duration, ready in deferred:
            holders = [
                m
                for m in self._holders.get(seg_no, [])
                if m.alive and self.breaker.allow(m.machine_id, ready)
            ]
            if not holders:
                if policy.allow_partial:
                    failed.append(seg_no)
                    if injector is not None:
                        injector.record("segment-lost", at=ready, seg_no=seg_no)
                    continue
                raise ClusterError(
                    f"segment {seg_no} has no alive replica (increase the "
                    f"replication factor)"
                )
            chosen = self._least_loaded(holders, {})
            is_coordinator = chosen.machine_id == 0
            arrive = ready if is_coordinator else ready + out_hop
            slow = injector.slowdown(chosen.machine_id, ready) if injector else 1.0
            finish = self._schedule_jobs(chosen.machine_id, arrive, [duration * slow])
            seg_respond[seg_no] = finish if is_coordinator else finish + back_hop
            seg_source[seg_no] = chosen.machine_id

        # ---- hedged duplicate dispatch for straggler response groups
        if policy.hedge_after is not None:
            hedges += self._hedge(
                segment_seconds, seg_respond, seg_source, dispatched, out_hop, back_hop
            )

        # ---- deadline: stop waiting, merge what arrived
        timed_out = False
        if policy.deadline is not None:
            cutoff = start_time + policy.deadline
            late = sorted(s for s, r in seg_respond.items() if r > cutoff)
            if late:
                if not policy.allow_partial:
                    raise QueryTimeoutError(
                        f"query missed its {policy.deadline:g}s deadline "
                        f"({len(late)} segment(s) still pending)",
                        deadline=policy.deadline,
                    )
                timed_out = True
                if injector is not None:
                    injector.record(
                        "deadline", at=cutoff, detail=f"{len(late)} segment(s) cut"
                    )
                for seg_no in late:
                    del seg_respond[seg_no]
                    seg_source.pop(seg_no, None)
                    failed.append(seg_no)
                if not seg_respond:
                    raise QueryTimeoutError(
                        "deadline elapsed before any segment answered",
                        deadline=policy.deadline,
                    )

        answered = len(seg_respond)
        coverage = answered / total
        if failed and coverage < policy.min_coverage:
            raise PartialResultError(
                f"coverage {coverage:.2f} below required minimum "
                f"{policy.min_coverage:.2f} ({sorted(set(failed))} unanswered)",
                coverage=coverage,
            )
        merge = self.merge_per_machine * len(set(seg_source.values()))
        if timed_out:
            completion = start_time + policy.deadline + merge
        elif seg_respond:
            completion = max(seg_respond.values()) + merge
        else:
            # Everything failed in degraded mode: the coordinator answers
            # immediately with an empty (coverage 0) result.
            completion = dispatched
        return RequestOutcome(
            completion_seconds=completion,
            coverage=coverage,
            total_segments=total,
            answered_segments=answered,
            failed_segments=sorted(set(failed)),
            retries=retries,
            hedges=hedges,
            timed_out=timed_out,
        )

    def _place_with_retries(
        self,
        segment_seconds: dict[int, float],
        start_time: float,
        failed: list[int],
    ) -> tuple[dict[int, list[tuple[int, float]]], int]:
        """Fault-aware placement: machine -> [(seg, duration+backoff)].

        Injected per-segment failures consume attempts; each retry prefers a
        replica not yet tried (failover) and adds exponential backoff to the
        job's effective duration.  Exhausted segments go to ``failed`` in
        degraded mode, or raise.
        """
        policy = self.policy
        injector = self.injector
        placement: dict[int, list[tuple[int, float]]] = {}
        pending: dict[int, float] = {}
        retries = 0
        for seg_no, duration in segment_seconds.items():
            placed = False
            attempt = 0
            penalty = 0.0
            tried: set[int] = set()
            while attempt < policy.max_attempts:
                holders = [
                    m
                    for m in self._holders.get(seg_no, [])
                    if m.alive and self.breaker.allow(m.machine_id, start_time)
                ]
                fresh = [m for m in holders if m.machine_id not in tried]
                candidates = fresh or holders
                if not candidates:
                    break
                chosen = self._least_loaded(candidates, pending)
                if injector is not None and injector.segment_attempt_fails(
                    seg_no, chosen.machine_id, attempt, now=start_time
                ):
                    tried.add(chosen.machine_id)
                    penalty += policy.backoff(attempt)
                    retries += 1
                    if self.breaker.record_failure(chosen.machine_id, start_time):
                        injector.record(
                            "breaker-open", at=start_time, machine_id=chosen.machine_id
                        )
                    injector.record(
                        "retry",
                        at=start_time,
                        machine_id=chosen.machine_id,
                        seg_no=seg_no,
                        attempt=attempt,
                    )
                    attempt += 1
                    continue
                self.breaker.record_success(chosen.machine_id)
                cost = duration + penalty
                placement.setdefault(chosen.machine_id, []).append((seg_no, cost))
                pending[chosen.machine_id] = pending.get(chosen.machine_id, 0.0) + cost
                placed = True
                break
            if placed:
                continue
            alive = [m for m in self._holders.get(seg_no, []) if m.alive]
            if self.policy.allow_partial:
                failed.append(seg_no)
                if injector is not None:
                    injector.record("segment-lost", at=start_time, seg_no=seg_no)
            elif not alive:
                raise ClusterError(
                    f"segment {seg_no} has no alive replica (increase the "
                    f"replication factor)"
                )
            else:
                raise ClusterError(
                    f"segment {seg_no} still failing after {attempt} attempt(s); "
                    f"no usable replica"
                )
        return placement, retries

    def _hedge(
        self,
        segment_seconds: dict[int, float],
        seg_respond: dict[int, float],
        seg_source: dict[int, int],
        dispatched: float,
        out_hop: float,
        back_hop: float,
    ) -> int:
        """Duplicate slow segments on alternate replicas; keep the winner."""
        policy = self.policy
        injector = self.injector
        tel = get_telemetry()
        hedge_start = dispatched + policy.hedge_after
        hedges = 0
        for seg_no in sorted(seg_respond):
            respond = seg_respond[seg_no]
            if respond - dispatched <= policy.hedge_after:
                continue
            source = seg_source[seg_no]
            alternates = [
                m
                for m in self._holders.get(seg_no, [])
                if m.alive and m.machine_id != source
            ]
            if not alternates:
                continue
            chosen = self._least_loaded(alternates, {})
            is_coordinator = chosen.machine_id == 0
            arrive = hedge_start if is_coordinator else hedge_start + out_hop
            with tel.span(
                "hedge.dispatch",
                machine_id=chosen.machine_id,
                seg_no=seg_no,
                primary=source,
            ) as hspan:
                slow = injector.slowdown(chosen.machine_id, hedge_start) if injector else 1.0
                finish = self._schedule_jobs(
                    chosen.machine_id, arrive, [segment_seconds[seg_no] * slow]
                )
                hedged = finish if is_coordinator else finish + back_hop
                hspan.set(simulated_finish=hedged, won=hedged < respond)
            hedges += 1
            if injector is not None:
                injector.record(
                    "hedge",
                    at=hedge_start,
                    machine_id=chosen.machine_id,
                    seg_no=seg_no,
                    detail=f"duplicate of machine {source}",
                )
            if hedged < respond:
                seg_respond[seg_no] = hedged
                seg_source[seg_no] = chosen.machine_id
        return hedges

    def trace(self, segment_seconds: dict[int, float]) -> QueryTrace:
        """One request on an idle cluster, with latency decomposition."""
        self.reset()
        total = self.simulate_request(0.0, segment_seconds)
        out_bytes = self.network.query_dispatch_bytes(self.dim)
        back_bytes = self.network.result_bytes(self.k)
        per_machine = {}
        responders = 0
        for machine in self.machines:
            seconds = sum(
                segment_seconds.get(seg, 0.0) for seg in machine.segments
            )
            if seconds > 0:
                per_machine[machine.machine_id] = seconds
                responders += 1
        network = (
            self.network.transfer_seconds(out_bytes)
            + self.network.transfer_seconds(back_bytes)
            if len(self.machines) > 1
            else 0.0
        )
        self.reset()
        return QueryTrace(
            total_seconds=total,
            dispatch_seconds=self.coordinator_overhead,
            per_machine_seconds=per_machine,
            network_seconds=network,
            merge_seconds=self.merge_per_machine * max(responders, 1),
        )
