"""Coordinator/worker query execution model (paper Figure 5).

The coordinator prepares top-k requests in a send queue and dispatches them
to worker machines; each worker searches its local segments in parallel
across its cores and returns (id, distance) pairs to the coordinator's
response pool for the final merge.

:class:`ClusterSimulator` replays *measured* per-segment service times
through that pipeline.  Machines are greedy multi-core schedulers: a task's
segment searches are list-scheduled onto the machine's earliest-free cores,
which approximates the real thread-pool behaviour and keeps the simulation
fast enough to drive millions of simulated requests.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from ..errors import ClusterError
from .machine import Machine
from .network import NetworkModel

__all__ = ["ClusterSimulator", "QueryTrace"]


@dataclass
class QueryTrace:
    """Latency decomposition of one request on an idle cluster."""

    total_seconds: float
    dispatch_seconds: float
    per_machine_seconds: dict[int, float]
    network_seconds: float
    merge_seconds: float


class ClusterSimulator:
    """Replays segment service times through the coordinator/worker pipeline."""

    def __init__(
        self,
        machines: list[Machine],
        network: NetworkModel | None = None,
        dim: int = 128,
        k: int = 10,
        coordinator_overhead: float = 5e-5,
        merge_per_machine: float = 8e-6,
    ):
        if not machines:
            raise ClusterError("simulator needs at least one machine")
        self.machines = machines
        self.network = network or NetworkModel()
        self.dim = dim
        self.k = k
        self.coordinator_overhead = coordinator_overhead
        self.merge_per_machine = merge_per_machine
        # Earliest-free timestamps, one heap entry per core per machine.
        self._core_free: dict[int, list[float]] = {
            m.machine_id: [0.0] * m.cores for m in machines
        }
        for heap in self._core_free.values():
            heapq.heapify(heap)
        # segment -> machines holding a replica (paper Sec. 4.2: replicas
        # make high availability straightforward).
        self._holders: dict[int, list[Machine]] = {}
        for machine in machines:
            for seg_no in machine.segments:
                self._holders.setdefault(seg_no, []).append(machine)

    def fail_machine(self, machine_id: int) -> None:
        """Mark a machine dead; its segments route to replica holders."""
        for machine in self.machines:
            if machine.machine_id == machine_id:
                machine.alive = False
                return
        raise ClusterError(f"no machine {machine_id}")

    def recover_machine(self, machine_id: int) -> None:
        for machine in self.machines:
            if machine.machine_id == machine_id:
                machine.alive = True
                return
        raise ClusterError(f"no machine {machine_id}")

    def _assign_segments(self, segment_seconds: dict[int, float]) -> dict[int, list[int]]:
        """Pick one alive replica holder per segment (least-loaded first).

        Returns machine_id -> segment list.  Raises when a segment has no
        alive holder (data loss: replication factor too low).
        """
        assignment: dict[int, list[int]] = {}
        pending: dict[int, float] = {}  # work tentatively placed this request
        for seg_no, duration in segment_seconds.items():
            holders = [m for m in self._holders.get(seg_no, []) if m.alive]
            if not holders:
                raise ClusterError(
                    f"segment {seg_no} has no alive replica (increase the "
                    f"replication factor)"
                )
            chosen = min(
                holders,
                key=lambda m: (
                    self._core_free[m.machine_id][0]
                    + pending.get(m.machine_id, 0.0) / m.cores
                ),
            )
            assignment.setdefault(chosen.machine_id, []).append(seg_no)
            pending[chosen.machine_id] = pending.get(chosen.machine_id, 0.0) + duration
        return assignment

    def reset(self) -> None:
        for machine in self.machines:
            heap = [0.0] * machine.cores
            heapq.heapify(heap)
            self._core_free[machine.machine_id] = heap

    # ----------------------------------------------------------- scheduling
    def _schedule_jobs(
        self, machine_id: int, arrive: float, durations: list[float]
    ) -> float:
        """List-schedule jobs onto a machine's cores; returns finish time."""
        heap = self._core_free[machine_id]
        finish = arrive
        for duration in durations:
            core_free = heapq.heappop(heap)
            start = max(arrive, core_free)
            end = start + duration
            heapq.heappush(heap, end)
            finish = max(finish, end)
        return finish

    def simulate_request(
        self, start_time: float, segment_seconds: dict[int, float]
    ) -> float:
        """Completion time of one request entering at ``start_time``.

        ``segment_seconds`` maps segment number -> measured local search
        time.  Each segment runs on exactly one alive replica holder; the
        coordinator is machine 0 and doubles as a worker (Sec. 5.1), so its
        subtask skips the network hop.
        """
        dispatched = start_time + self.coordinator_overhead
        out_bytes = self.network.query_dispatch_bytes(self.dim)
        back_bytes = self.network.result_bytes(self.k)
        assignment = self._assign_segments(segment_seconds)
        responses = []
        for machine_id, segments in assignment.items():
            is_coordinator = machine_id == 0
            arrive = dispatched if is_coordinator else (
                dispatched + self.network.transfer_seconds(out_bytes)
            )
            finish = self._schedule_jobs(
                machine_id, arrive, [segment_seconds[s] for s in segments]
            )
            respond = finish if is_coordinator else (
                finish + self.network.transfer_seconds(back_bytes)
            )
            responses.append(respond)
        if not responses:
            return dispatched + self.merge_per_machine
        merge = self.merge_per_machine * len(responses)
        return max(responses) + merge

    def trace(self, segment_seconds: dict[int, float]) -> QueryTrace:
        """One request on an idle cluster, with latency decomposition."""
        self.reset()
        total = self.simulate_request(0.0, segment_seconds)
        out_bytes = self.network.query_dispatch_bytes(self.dim)
        back_bytes = self.network.result_bytes(self.k)
        per_machine = {}
        responders = 0
        for machine in self.machines:
            seconds = sum(
                segment_seconds.get(seg, 0.0) for seg in machine.segments
            )
            if seconds > 0:
                per_machine[machine.machine_id] = seconds
                responders += 1
        network = (
            self.network.transfer_seconds(out_bytes)
            + self.network.transfer_seconds(back_bytes)
            if len(self.machines) > 1
            else 0.0
        )
        self.reset()
        return QueryTrace(
            total_seconds=total,
            dispatch_seconds=self.coordinator_overhead,
            per_machine_seconds=per_machine,
            network_seconds=network,
            merge_seconds=self.merge_per_machine * max(responders, 1),
        )
