"""Network cost model for the cluster simulation.

TigerVector's distributed design deliberately minimizes network traffic:
queries ship only the query vector out and ``(id, distance)`` pairs back
(Sec. 4.2).  The model therefore needs just a per-message latency and a
bandwidth term; defaults approximate an intra-zone cloud network
(~200 microseconds RTT contribution per hop, ~10 Gb/s).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["NetworkModel"]


@dataclass
class NetworkModel:
    latency_seconds: float = 0.0002
    bandwidth_bytes_per_second: float = 1.25e9

    def transfer_seconds(self, num_bytes: int) -> float:
        """One-way cost of shipping ``num_bytes`` between two machines."""
        return self.latency_seconds + num_bytes / self.bandwidth_bytes_per_second

    def query_dispatch_bytes(self, dim: int) -> int:
        """Query vector (float32) + request framing."""
        return 4 * dim + 128

    def result_bytes(self, k: int) -> int:
        """k (id, distance) pairs + response framing."""
        return 12 * k + 64
