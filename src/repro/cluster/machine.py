"""Simulated machines and segment placement."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ClusterError
from ..telemetry import get_telemetry

__all__ = ["Machine", "make_cluster", "segment_holders"]


@dataclass
class Machine:
    """One server: a core count and the segments it hosts.

    Defaults mirror the paper's ``n2d-standard-32`` (32 vCPUs).
    ``alive=False`` models a failed server; the coordinator then routes its
    segments to replica holders (paper Sec. 4.2: high availability via
    embedding-segment replicas distributed across the cluster).
    """

    machine_id: int
    cores: int = 32
    segments: list[int] = field(default_factory=list)
    alive: bool = True
    #: Lifetime count of segment jobs scheduled onto this machine's cores;
    #: purely observational (load-balance visibility in ``repro-stats``).
    jobs_served: int = 0

    def __post_init__(self) -> None:
        if self.cores <= 0:
            raise ClusterError("machine needs at least one core")

    def record_jobs(self, n: int) -> None:
        """Tally ``n`` segment jobs placed on this machine."""
        self.jobs_served += n
        tel = get_telemetry()
        if tel.enabled:
            tel.inc("machine.jobs", n)
            tel.set_gauge(f"machine.{self.machine_id}.jobs_served", self.jobs_served)


def make_cluster(
    num_machines: int,
    num_segments: int,
    cores: int = 32,
    replication_factor: int = 1,
) -> list[Machine]:
    """Round-robin segment placement across machines (vertex-centric
    partitioning distributes segments evenly, Sec. 3).

    With ``replication_factor > 1`` each segment is additionally placed on
    the next ``rf - 1`` machines, so any single-machine failure leaves every
    segment reachable (as long as ``rf >= 2`` and there are >= rf machines).
    """
    if num_machines <= 0:
        raise ClusterError("cluster needs at least one machine")
    if replication_factor < 1:
        raise ClusterError("replication factor must be >= 1")
    if replication_factor > num_machines:
        raise ClusterError("replication factor cannot exceed the machine count")
    machines = [Machine(i, cores=cores) for i in range(num_machines)]
    for seg_no in range(num_segments):
        primary = seg_no % num_machines
        for replica in range(replication_factor):
            machines[(primary + replica) % num_machines].segments.append(seg_no)
    return machines


def segment_holders(machines: list[Machine]) -> dict[int, list[Machine]]:
    """Segment -> replica-holder machines, primary first (placement order).

    The coordinator and the real distributed searcher both route through
    this map; failover walks the list past dead/quarantined holders.
    """
    holders: dict[int, list[Machine]] = {}
    for machine in machines:
        for seg_no in machine.segments:
            holders.setdefault(seg_no, []).append(machine)
    return holders
