"""wrk2-like closed-loop load generator (paper Sec. 6.3).

The paper's sender machine keeps 320 connections over 16 threads busy with
randomly selected query vectors, enough to saturate throughput.  The
simulated equivalent: ``connections`` closed-loop clients, each issuing its
next request the moment the previous one completes, for a simulated
``duration``.  Per-request segment service times are drawn (round-robin)
from a pool of measured samples so CPU-cache effects of identical payloads
don't flatter the results — mirroring the paper's random-payload choice.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field

import numpy as np

from ..errors import ClusterError, PartialResultError, QueryTimeoutError
from .coordinator import ClusterSimulator

__all__ = ["ClosedLoopLoadGenerator", "LoadResult"]


@dataclass
class LoadResult:
    """Throughput/latency outcome of one simulated load run.

    Under chaos (a fault injector attached to the simulator) the run also
    reports availability: ``failed`` counts queries that raised
    (timeout/unrecoverable loss), ``partial`` counts degraded answers with
    ``coverage < 1``, and ``mean_coverage`` averages coverage over all
    non-failed queries.
    """

    qps: float
    completed: int
    duration_seconds: float
    mean_latency_seconds: float
    p50_latency_seconds: float
    p99_latency_seconds: float
    connections: int
    failed: int = 0
    partial: int = 0
    mean_coverage: float = 1.0


class ClosedLoopLoadGenerator:
    """Drives a :class:`ClusterSimulator` with closed-loop connections."""

    def __init__(
        self,
        simulator: ClusterSimulator,
        connections: int = 320,
    ):
        if connections <= 0:
            raise ClusterError("need at least one connection")
        self.simulator = simulator
        self.connections = connections

    def run(
        self,
        sample_segment_seconds: list[dict[int, float]],
        duration_seconds: float = 10.0,
    ) -> LoadResult:
        """Simulate ``duration_seconds`` of closed-loop load.

        ``sample_segment_seconds`` is a pool of measured per-query samples
        (segment -> seconds); requests cycle through it round-robin.
        """
        if not sample_segment_seconds:
            raise ClusterError("need at least one measured sample")
        self.simulator.reset()
        samples = itertools.cycle(sample_segment_seconds)
        chaos = self.simulator.injector is not None
        self._failed = 0
        self._coverages: list[float] = []
        # Event heap holds (completion_time, seq, issue_time).
        events: list[tuple[float, int, float]] = []
        seq = itertools.count()
        for _ in range(self.connections):
            issue = 0.0
            done = self._issue(issue, next(samples), chaos)
            heapq.heappush(events, (done, next(seq), issue))
        latencies: list[float] = []
        completed = 0
        now = 0.0
        while events:
            done, _, issued = heapq.heappop(events)
            now = done
            latencies.append(done - issued)
            completed += 1
            if done < duration_seconds:
                next_done = self._issue(done, next(samples), chaos)
                heapq.heappush(events, (next_done, next(seq), done))
        horizon = max(now, duration_seconds)
        lat = np.asarray(latencies)
        coverages = np.asarray(self._coverages) if self._coverages else np.ones(1)
        return LoadResult(
            qps=completed / horizon,
            completed=completed,
            duration_seconds=horizon,
            mean_latency_seconds=float(lat.mean()) if lat.size else 0.0,
            p50_latency_seconds=float(np.percentile(lat, 50)) if lat.size else 0.0,
            p99_latency_seconds=float(np.percentile(lat, 99)) if lat.size else 0.0,
            connections=self.connections,
            failed=self._failed,
            partial=int(np.count_nonzero(coverages < 1.0)),
            mean_coverage=float(coverages.mean()),
        )

    def _issue(self, issue: float, sample: dict[int, float], chaos: bool) -> float:
        """One request; under chaos, failures are counted, not raised.

        A failed query still occupies its connection until the deadline (if
        configured) or a nominal timeout, mirroring a client that waits out
        the error before reissuing.
        """
        if not chaos:
            return self.simulator.simulate_request(issue, sample)
        try:
            outcome = self.simulator.simulate_request_outcome(issue, sample)
        except (QueryTimeoutError, PartialResultError, ClusterError):
            self._failed += 1
            deadline = self.simulator.policy.deadline
            return issue + (deadline if deadline is not None else 0.001)
        self._coverages.append(outcome.coverage)
        return outcome.completion_seconds
