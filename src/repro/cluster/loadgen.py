"""wrk2-like closed-loop load generator (paper Sec. 6.3).

The paper's sender machine keeps 320 connections over 16 threads busy with
randomly selected query vectors, enough to saturate throughput.  The
simulated equivalent: ``connections`` closed-loop clients, each issuing its
next request the moment the previous one completes, for a simulated
``duration``.  Per-request segment service times are drawn (round-robin)
from a pool of measured samples so CPU-cache effects of identical payloads
don't flatter the results — mirroring the paper's random-payload choice.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field

import numpy as np

from ..errors import ClusterError, PartialResultError, QueryTimeoutError
from .coordinator import ClusterSimulator

__all__ = ["ClosedLoopLoadGenerator", "LoadResult"]


@dataclass
class LoadResult:
    """Throughput/latency outcome of one simulated load run.

    Under chaos (a fault injector attached to the simulator) the run also
    reports availability: ``failed`` counts queries that raised
    (timeout/unrecoverable loss), ``partial`` counts degraded answers with
    ``coverage < 1``, and ``mean_coverage`` averages coverage over all
    non-failed queries.
    """

    qps: float
    completed: int
    duration_seconds: float
    mean_latency_seconds: float
    p50_latency_seconds: float
    p99_latency_seconds: float
    connections: int
    failed: int = 0
    partial: int = 0
    mean_coverage: float = 1.0
    #: Open-loop runs only: the Poisson arrival rate that was offered and
    #: the number of arrivals generated (compare with ``completed`` +
    #: ``failed`` to see shed/backlog behavior under overload).
    target_qps: float | None = None
    offered: int = 0


class ClosedLoopLoadGenerator:
    """Drives a :class:`ClusterSimulator` with closed-loop connections."""

    def __init__(
        self,
        simulator: ClusterSimulator,
        connections: int = 320,
    ):
        if connections <= 0:
            raise ClusterError("need at least one connection")
        self.simulator = simulator
        self.connections = connections

    def run(
        self,
        sample_segment_seconds: list[dict[int, float]],
        duration_seconds: float = 10.0,
    ) -> LoadResult:
        """Simulate ``duration_seconds`` of closed-loop load.

        ``sample_segment_seconds`` is a pool of measured per-query samples
        (segment -> seconds); requests cycle through it round-robin.
        """
        if not sample_segment_seconds:
            raise ClusterError("need at least one measured sample")
        self.simulator.reset()
        samples = itertools.cycle(sample_segment_seconds)
        chaos = self._resilient()
        self._failed = 0
        self._coverages: list[float] = []
        # Event heap holds (completion_time, seq, issue_time).
        events: list[tuple[float, int, float]] = []
        seq = itertools.count()
        for _ in range(self.connections):
            issue = 0.0
            done = self._issue(issue, next(samples), chaos)
            heapq.heappush(events, (done, next(seq), issue))
        latencies: list[float] = []
        completed = 0
        now = 0.0
        while events:
            done, _, issued = heapq.heappop(events)
            now = done
            latencies.append(done - issued)
            completed += 1
            if done < duration_seconds:
                next_done = self._issue(done, next(samples), chaos)
                heapq.heappush(events, (next_done, next(seq), done))
        horizon = max(now, duration_seconds)
        lat = np.asarray(latencies)
        coverages = np.asarray(self._coverages) if self._coverages else np.ones(1)
        return LoadResult(
            qps=completed / horizon,
            completed=completed,
            duration_seconds=horizon,
            mean_latency_seconds=float(lat.mean()) if lat.size else 0.0,
            p50_latency_seconds=float(np.percentile(lat, 50)) if lat.size else 0.0,
            p99_latency_seconds=float(np.percentile(lat, 99)) if lat.size else 0.0,
            connections=self.connections,
            failed=self._failed,
            partial=int(np.count_nonzero(coverages < 1.0)),
            mean_coverage=float(coverages.mean()),
        )

    def run_open_loop(
        self,
        sample_segment_seconds: list[dict[int, float]],
        duration_seconds: float = 10.0,
        target_qps: float = 1000.0,
        seed: int = 0,
    ) -> LoadResult:
        """Seeded open-loop (Poisson-arrival) load at ``target_qps``.

        Unlike the closed loop, arrivals do not wait for completions, so a
        target above capacity builds a genuine backlog — this is the mode
        the serve benchmark uses to drive overload and measure shed and
        deadline behavior.  Inter-arrival gaps are exponential draws from
        ``numpy.random.default_rng(seed)``, so runs are reproducible.
        """
        if not sample_segment_seconds:
            raise ClusterError("need at least one measured sample")
        if target_qps <= 0:
            raise ClusterError("target_qps must be positive")
        self.simulator.reset()
        samples = itertools.cycle(sample_segment_seconds)
        resilient = self._resilient()
        self._failed = 0
        self._coverages = []
        rng = np.random.default_rng(seed)
        latencies: list[float] = []
        completed = 0
        offered = 0
        last_done = 0.0
        arrival = 0.0
        while True:
            arrival += rng.exponential(1.0 / target_qps)
            if arrival >= duration_seconds:
                break
            offered += 1
            done = self._issue(arrival, next(samples), resilient)
            latencies.append(done - arrival)
            completed += 1
            last_done = max(last_done, done)
        horizon = max(last_done, duration_seconds)
        lat = np.asarray(latencies)
        coverages = np.asarray(self._coverages) if self._coverages else np.ones(1)
        return LoadResult(
            qps=completed / horizon,
            completed=completed,
            duration_seconds=horizon,
            mean_latency_seconds=float(lat.mean()) if lat.size else 0.0,
            p50_latency_seconds=float(np.percentile(lat, 50)) if lat.size else 0.0,
            p99_latency_seconds=float(np.percentile(lat, 99)) if lat.size else 0.0,
            connections=0,
            failed=self._failed,
            partial=int(np.count_nonzero(coverages < 1.0)),
            mean_coverage=float(coverages.mean()),
            target_qps=target_qps,
            offered=offered,
        )

    def _resilient(self) -> bool:
        """Whether per-request failures should be counted, not raised.

        True under chaos (an injector is attached) and also when the policy
        sets a deadline: the outcome path enforces the deadline even without
        an injector, which is the whole point of an overload run.
        """
        return (
            self.simulator.injector is not None
            or self.simulator.policy.deadline is not None
        )

    def _issue(self, issue: float, sample: dict[int, float], chaos: bool) -> float:
        """One request; under chaos, failures are counted, not raised.

        A failed query still occupies its connection until the deadline (if
        configured) or a nominal timeout, mirroring a client that waits out
        the error before reissuing.
        """
        if not chaos:
            return self.simulator.simulate_request(issue, sample)
        try:
            outcome = self.simulator.simulate_request_outcome(issue, sample)
        except (QueryTimeoutError, PartialResultError, ClusterError):
            self._failed += 1
            deadline = self.simulator.policy.deadline
            return issue + (deadline if deadline is not None else 0.001)
        self._coverages.append(outcome.coverage)
        return outcome.completion_seconds
