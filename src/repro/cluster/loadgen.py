"""wrk2-like closed-loop load generator (paper Sec. 6.3).

The paper's sender machine keeps 320 connections over 16 threads busy with
randomly selected query vectors, enough to saturate throughput.  The
simulated equivalent: ``connections`` closed-loop clients, each issuing its
next request the moment the previous one completes, for a simulated
``duration``.  Per-request segment service times are drawn (round-robin)
from a pool of measured samples so CPU-cache effects of identical payloads
don't flatter the results — mirroring the paper's random-payload choice.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field

import numpy as np

from ..errors import ClusterError
from .coordinator import ClusterSimulator

__all__ = ["ClosedLoopLoadGenerator", "LoadResult"]


@dataclass
class LoadResult:
    """Throughput/latency outcome of one simulated load run."""

    qps: float
    completed: int
    duration_seconds: float
    mean_latency_seconds: float
    p50_latency_seconds: float
    p99_latency_seconds: float
    connections: int


class ClosedLoopLoadGenerator:
    """Drives a :class:`ClusterSimulator` with closed-loop connections."""

    def __init__(
        self,
        simulator: ClusterSimulator,
        connections: int = 320,
    ):
        if connections <= 0:
            raise ClusterError("need at least one connection")
        self.simulator = simulator
        self.connections = connections

    def run(
        self,
        sample_segment_seconds: list[dict[int, float]],
        duration_seconds: float = 10.0,
    ) -> LoadResult:
        """Simulate ``duration_seconds`` of closed-loop load.

        ``sample_segment_seconds`` is a pool of measured per-query samples
        (segment -> seconds); requests cycle through it round-robin.
        """
        if not sample_segment_seconds:
            raise ClusterError("need at least one measured sample")
        self.simulator.reset()
        samples = itertools.cycle(sample_segment_seconds)
        # Event heap holds (completion_time, seq, issue_time).
        events: list[tuple[float, int, float]] = []
        seq = itertools.count()
        for _ in range(self.connections):
            issue = 0.0
            done = self.simulator.simulate_request(issue, next(samples))
            heapq.heappush(events, (done, next(seq), issue))
        latencies: list[float] = []
        completed = 0
        now = 0.0
        while events:
            done, _, issued = heapq.heappop(events)
            now = done
            latencies.append(done - issued)
            completed += 1
            if done < duration_seconds:
                next_done = self.simulator.simulate_request(done, next(samples))
                heapq.heappush(events, (next_done, next(seq), done))
        horizon = max(now, duration_seconds)
        lat = np.asarray(latencies)
        return LoadResult(
            qps=completed / horizon,
            completed=completed,
            duration_seconds=horizon,
            mean_latency_seconds=float(lat.mean()),
            p50_latency_seconds=float(np.percentile(lat, 50)),
            p99_latency_seconds=float(np.percentile(lat, 99)),
            connections=self.connections,
        )
