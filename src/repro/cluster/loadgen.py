"""wrk2-like closed-loop load generator (paper Sec. 6.3).

The paper's sender machine keeps 320 connections over 16 threads busy with
randomly selected query vectors, enough to saturate throughput.  The
simulated equivalent: ``connections`` closed-loop clients, each issuing its
next request the moment the previous one completes, for a simulated
``duration``.  Per-request segment service times are drawn (round-robin)
from a pool of measured samples so CPU-cache effects of identical payloads
don't flatter the results — mirroring the paper's random-payload choice.

``sample_skew`` switches the round-robin draw to a seeded zipfian draw
over the sample pool (:func:`repro.datasets.workloads.zipfian_weights`):
real traffic concentrates on a hot subset, and the tiered-storage layer's
promotion/demotion decisions are only meaningful under that skew.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field

import numpy as np

from ..errors import (
    ClusterError,
    PartialResultError,
    QueryTimeoutError,
    StalenessBoundError,
)
from .coordinator import ClusterSimulator

__all__ = ["ClosedLoopLoadGenerator", "LoadResult"]


@dataclass
class LoadResult:
    """Throughput/latency outcome of one simulated load run.

    Under chaos (a fault injector attached to the simulator) the run also
    reports availability: ``failed`` counts queries that raised
    (timeout/unrecoverable loss), ``partial`` counts degraded answers with
    ``coverage < 1``, and ``mean_coverage`` averages coverage over all
    non-failed queries.
    """

    qps: float
    completed: int
    duration_seconds: float
    mean_latency_seconds: float
    p50_latency_seconds: float
    p99_latency_seconds: float
    connections: int
    failed: int = 0
    partial: int = 0
    mean_coverage: float = 1.0
    #: SLA accounting breakdown of ``failed``: deadline misses vs
    #: freshness-contract rejections (:class:`StalenessBoundError`) are
    #: different operator signals — the former wants capacity, the latter
    #: wants the vacuum/commit pipeline to catch up.
    deadline_failed: int = 0
    stale_rejected: int = 0
    #: Total snapshot re-pin waits reported by successful outcomes
    #: (read-your-writes/session-token waits); latency already folds them
    #: in, this counts how often freshness had to be waited for.
    token_waits: int = 0
    #: Open-loop runs only: the Poisson arrival rate that was offered and
    #: the number of arrivals generated (compare with ``completed`` +
    #: ``failed`` to see shed/backlog behavior under overload).
    target_qps: float | None = None
    offered: int = 0


class ClosedLoopLoadGenerator:
    """Drives a :class:`ClusterSimulator` with closed-loop connections."""

    def __init__(
        self,
        simulator: ClusterSimulator,
        connections: int = 320,
        sample_skew: float | None = None,
        skew_seed: int = 0,
    ):
        if connections <= 0:
            raise ClusterError("need at least one connection")
        if sample_skew is not None and sample_skew <= 0:
            raise ClusterError("sample_skew must be positive")
        self.simulator = simulator
        self.connections = connections
        #: None = round-robin through the sample pool (the default);
        #: a float = zipfian skew exponent for seeded hot-set traffic.
        self.sample_skew = sample_skew
        self.skew_seed = skew_seed

    def _sample_iter(self, pool: list[dict[int, float]]):
        """Round-robin by default; seeded zipfian draw when skew is set."""
        if self.sample_skew is None:
            return itertools.cycle(pool)
        from ..datasets.workloads import zipfian_weights

        weights = zipfian_weights(len(pool), self.sample_skew)
        rng = np.random.default_rng(self.skew_seed)

        def draw():
            while True:
                # Block draws amortize the rng call without changing the
                # stream (the sequence is fully determined by the seed).
                for i in rng.choice(len(pool), size=256, p=weights):
                    yield pool[int(i)]

        return draw()

    def run(
        self,
        sample_segment_seconds: list[dict[int, float]],
        duration_seconds: float = 10.0,
    ) -> LoadResult:
        """Simulate ``duration_seconds`` of closed-loop load.

        ``sample_segment_seconds`` is a pool of measured per-query samples
        (segment -> seconds); requests cycle through it round-robin.
        """
        if not sample_segment_seconds:
            raise ClusterError("need at least one measured sample")
        self.simulator.reset()
        samples = self._sample_iter(sample_segment_seconds)
        chaos = self._resilient()
        self._reset_accounting()
        # Event heap holds (completion_time, seq, issue_time).
        events: list[tuple[float, int, float]] = []
        seq = itertools.count()
        for _ in range(self.connections):
            issue = 0.0
            done = self._issue(issue, next(samples), chaos)
            heapq.heappush(events, (done, next(seq), issue))
        latencies: list[float] = []
        completed = 0
        now = 0.0
        while events:
            done, _, issued = heapq.heappop(events)
            now = done
            latencies.append(done - issued)
            completed += 1
            if done < duration_seconds:
                next_done = self._issue(done, next(samples), chaos)
                heapq.heappush(events, (next_done, next(seq), done))
        horizon = max(now, duration_seconds)
        lat = np.asarray(latencies)
        coverages = np.asarray(self._coverages) if self._coverages else np.ones(1)
        return LoadResult(
            qps=completed / horizon,
            completed=completed,
            duration_seconds=horizon,
            mean_latency_seconds=float(lat.mean()) if lat.size else 0.0,
            p50_latency_seconds=float(np.percentile(lat, 50)) if lat.size else 0.0,
            p99_latency_seconds=float(np.percentile(lat, 99)) if lat.size else 0.0,
            connections=self.connections,
            failed=self._failed,
            partial=int(np.count_nonzero(coverages < 1.0)),
            mean_coverage=float(coverages.mean()),
            deadline_failed=self._deadline_failed,
            stale_rejected=self._stale_rejected,
            token_waits=self._token_waits,
        )

    def run_open_loop(
        self,
        sample_segment_seconds: list[dict[int, float]],
        duration_seconds: float = 10.0,
        target_qps: float = 1000.0,
        seed: int = 0,
    ) -> LoadResult:
        """Seeded open-loop (Poisson-arrival) load at ``target_qps``.

        Unlike the closed loop, arrivals do not wait for completions, so a
        target above capacity builds a genuine backlog — this is the mode
        the serve benchmark uses to drive overload and measure shed and
        deadline behavior.  Inter-arrival gaps are exponential draws from
        ``numpy.random.default_rng(seed)``, so runs are reproducible.
        """
        if not sample_segment_seconds:
            raise ClusterError("need at least one measured sample")
        if target_qps <= 0:
            raise ClusterError("target_qps must be positive")
        self.simulator.reset()
        samples = self._sample_iter(sample_segment_seconds)
        resilient = self._resilient()
        self._reset_accounting()
        rng = np.random.default_rng(seed)
        latencies: list[float] = []
        completed = 0
        offered = 0
        last_done = 0.0
        arrival = 0.0
        while True:
            arrival += rng.exponential(1.0 / target_qps)
            if arrival >= duration_seconds:
                break
            offered += 1
            done = self._issue(arrival, next(samples), resilient)
            latencies.append(done - arrival)
            completed += 1
            last_done = max(last_done, done)
        horizon = max(last_done, duration_seconds)
        lat = np.asarray(latencies)
        coverages = np.asarray(self._coverages) if self._coverages else np.ones(1)
        return LoadResult(
            qps=completed / horizon,
            completed=completed,
            duration_seconds=horizon,
            mean_latency_seconds=float(lat.mean()) if lat.size else 0.0,
            p50_latency_seconds=float(np.percentile(lat, 50)) if lat.size else 0.0,
            p99_latency_seconds=float(np.percentile(lat, 99)) if lat.size else 0.0,
            connections=0,
            failed=self._failed,
            partial=int(np.count_nonzero(coverages < 1.0)),
            mean_coverage=float(coverages.mean()),
            deadline_failed=self._deadline_failed,
            stale_rejected=self._stale_rejected,
            token_waits=self._token_waits,
            target_qps=target_qps,
            offered=offered,
        )

    def _reset_accounting(self) -> None:
        self._failed = 0
        self._deadline_failed = 0
        self._stale_rejected = 0
        self._token_waits = 0
        self._coverages: list[float] = []

    def _resilient(self) -> bool:
        """Whether per-request failures should be counted, not raised.

        True under chaos (an injector is attached) and also when the policy
        sets a deadline: the outcome path enforces the deadline even without
        an injector, which is the whole point of an overload run.
        """
        return (
            self.simulator.injector is not None
            or self.simulator.policy.deadline is not None
        )

    def _issue(self, issue: float, sample: dict[int, float], chaos: bool) -> float:
        """One request; under chaos, failures are counted, not raised.

        A deadline-failed query still occupies its connection until the
        deadline (if configured) or a nominal timeout, mirroring a client
        that waits out the error before reissuing.  A staleness rejection
        is a fast typed failure (the server refuses rather than serving
        stale), so the connection frees almost immediately; both are
        counted in ``failed`` but broken out separately in
        :class:`LoadResult`.
        """
        if not chaos:
            return self.simulator.simulate_request(issue, sample)
        try:
            outcome = self.simulator.simulate_request_outcome(issue, sample)
        except QueryTimeoutError:
            self._failed += 1
            self._deadline_failed += 1
            deadline = self.simulator.policy.deadline
            return issue + (deadline if deadline is not None else 0.001)
        except StalenessBoundError as exc:
            self._failed += 1
            self._stale_rejected += 1
            return issue + max(getattr(exc, "waited", 0.0) or 0.0, 0.001)
        except (PartialResultError, ClusterError):
            self._failed += 1
            deadline = self.simulator.policy.deadline
            return issue + (deadline if deadline is not None else 0.001)
        self._coverages.append(outcome.coverage)
        self._token_waits += int(getattr(outcome, "token_waits", 0) or 0)
        return outcome.completion_seconds
