"""Simulated MPP cluster (substitute for the paper's GCP deployment).

The paper runs TigerVector on 1–8 ``n2d-standard-32`` machines and drives it
with wrk2.  Offline we substitute a discrete-event cluster simulator: real
per-segment search times are measured on the local HNSW indexes, then a
coordinator/worker model (Figure 5 of the paper: send queue -> workers ->
response pool -> global merge) replays those service times across simulated
machines with a network cost model.  Node- and data-scalability *shapes*
(Figures 9–10) emerge from the compute/communication ratio, which is the
same mechanism at play on real hardware.
"""

from .coordinator import ClusterSimulator, QueryTrace, RequestOutcome
from .costs import HardwareCost, NEPTUNE_1024_MNCU, TIGERVECTOR_N2D
from .loadgen import ClosedLoopLoadGenerator, LoadResult
from .machine import Machine, make_cluster, segment_holders
from .network import NetworkModel

__all__ = [
    "ClosedLoopLoadGenerator",
    "ClusterSimulator",
    "HardwareCost",
    "LoadResult",
    "Machine",
    "NEPTUNE_1024_MNCU",
    "NetworkModel",
    "QueryTrace",
    "RequestOutcome",
    "TIGERVECTOR_N2D",
    "make_cluster",
    "segment_holders",
]
